package collector

import (
	"context"
	"testing"
	"time"

	"lockdown/internal/flowrec"
	"lockdown/internal/ipfix"
	"lockdown/internal/netflow"
)

// collectTagged gathers tagged batches until want rows arrived or the
// timeout passes, returning rows per stream.
func collectTagged(c *Collector, want int, timeout time.Duration) map[uint32]int {
	out := make(map[uint32]int)
	got := 0
	deadline := time.After(timeout)
	for got < want {
		select {
		case tb, ok := <-c.Tagged():
			if !ok {
				return out
			}
			out[tb.Stream] += tb.Batch.Len()
			got += tb.Batch.Len()
			flowrec.PutBatch(tb.Batch)
		case <-deadline:
			return out
		}
	}
	return out
}

// TestTaggedCollectorDemuxesStreams sends the same rows from three
// exporters with distinct stream identities into one tagged collector
// and checks per-datagram attribution in every format.
func TestTaggedCollectorDemuxesStreams(t *testing.T) {
	for _, format := range []Format{FormatNetflowV5, FormatNetflowV9, FormatIPFIX} {
		t.Run(format.String(), func(t *testing.T) {
			col, err := NewTaggedCollector(format, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go col.Run(ctx)
			defer col.Close()

			const perStream = 40
			streams := []uint32{1, 2, 3}
			for _, id := range streams {
				exp, err := NewStreamExporter(format, col.Addr(), id)
				if err != nil {
					t.Fatalf("NewStreamExporter(%d): %v", id, err)
				}
				if err := exp.ExportBatch(flowrec.FromRecords(testRecords(perStream))); err != nil {
					t.Fatal(err)
				}
				exp.Close()
			}
			got := collectTagged(col, perStream*len(streams), 3*time.Second)
			for _, id := range streams {
				if got[id] != perStream {
					t.Errorf("stream %d delivered %d rows, want %d (full demux: %v)", id, got[id], perStream, got)
				}
			}
		})
	}
}

// TestStreamIDReadsHeaders checks the raw header extraction against
// packets produced by the real encoders, plus the short-packet guard.
func TestStreamIDReadsHeaders(t *testing.T) {
	b := flowrec.FromRecords(testRecords(3))
	now := time.Now().UTC()

	v5, err := netflow.EncodeV5StreamBatch(nil, b, 0, b.Len(), now, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := StreamID(FormatNetflowV5, v5); got != 42 {
		t.Errorf("StreamID(v5) = %d, want 42", got)
	}

	enc9 := netflow.V9Encoder{SourceID: 70000}
	v9, err := enc9.EncodeBatch(nil, b, 0, b.Len(), now)
	if err != nil {
		t.Fatal(err)
	}
	if got := StreamID(FormatNetflowV9, v9); got != 70000 {
		t.Errorf("StreamID(v9) = %d, want 70000", got)
	}

	ipf := ipfix.Encoder{DomainID: 1 << 24}
	msg, err := ipf.EncodeBatch(nil, b, 0, b.Len(), now)
	if err != nil {
		t.Fatal(err)
	}
	if got := StreamID(FormatIPFIX, msg); got != 1<<24 {
		t.Errorf("StreamID(ipfix) = %d, want %d", got, 1<<24)
	}

	for _, format := range []Format{FormatNetflowV5, FormatNetflowV9, FormatIPFIX} {
		if got := StreamID(format, nil); got != 0 {
			t.Errorf("StreamID(%v, nil) = %d, want 0", format, got)
		}
		if got := StreamID(format, []byte{1, 2, 3}); got != 0 {
			t.Errorf("StreamID(%v, short) = %d, want 0", format, got)
		}
	}
}

// TestStreamExporterRejectsWideV5Stream pins the NetFlow v5 limit: the
// engine ID is one byte, so stream identities beyond it must be refused
// rather than silently truncated into a colliding stream.
func TestStreamExporterRejectsWideV5Stream(t *testing.T) {
	if _, err := NewStreamExporter(FormatNetflowV5, "127.0.0.1:9", MaxV5Stream+1); err == nil {
		t.Fatal("v5 exporter accepted a stream beyond the 8-bit engine ID")
	}
	exp, err := NewStreamExporter(FormatNetflowV5, "127.0.0.1:9", MaxV5Stream)
	if err != nil {
		t.Fatalf("v5 exporter rejected the maximum 8-bit stream: %v", err)
	}
	exp.Close()
	// The wide formats carry the full 32 bits.
	exp, err = NewStreamExporter(FormatIPFIX, "127.0.0.1:9", 1<<20)
	if err != nil {
		t.Fatalf("ipfix exporter rejected a wide stream: %v", err)
	}
	exp.Close()
}

// TestExporterPacing holds the exporter to a datagram rate and checks
// the token bucket actually spreads the sends out — and that removing
// the limit removes the wait.
func TestExporterPacing(t *testing.T) {
	sink, err := NewTaggedCollector(FormatIPFIX, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	exp, err := NewExporter(FormatIPFIX, sink.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	// 100 pps with a burst of 10: 30 datagrams must take at least
	// (30-10)/100 = 200ms. The assertion keeps a wide margin below the
	// theoretical floor so scheduler jitter cannot flake it.
	exp.SetRate(100)
	pkt := []byte("LKRWx")
	start := time.Now()
	for i := 0; i < 30; i++ {
		if err := exp.WriteRaw(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Errorf("30 datagrams at 100 pps took %v, want >= 150ms of pacing", d)
	}

	exp.SetRate(0) // unlimited again
	start = time.Now()
	for i := 0; i < 30; i++ {
		if err := exp.WriteRaw(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("30 unpaced datagrams took %v; SetRate(0) should remove the limit", d)
	}
}
