package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("drop=0.05,dup=0.01,reorder=0.02,corrupt=0.001,delay=5ms,seed=7,kill=shard1@t+2s,kill=shard0@t+500ms,stall=shard2@t+1s:250ms")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Drop != 0.05 || spec.Dup != 0.01 || spec.Reorder != 0.02 || spec.Corrupt != 0.001 {
		t.Fatalf("probabilities: %+v", spec)
	}
	if spec.Delay != 5*time.Millisecond || spec.Seed != 7 {
		t.Fatalf("delay/seed: %+v", spec)
	}
	if len(spec.Kills) != 2 || spec.Kills[0] != (KillEvent{Shard: 1, At: 2 * time.Second}) {
		t.Fatalf("kills: %+v", spec.Kills)
	}
	if len(spec.Stalls) != 1 || spec.Stalls[0] != (StallEvent{Shard: 2, At: time.Second, For: 250 * time.Millisecond}) {
		t.Fatalf("stalls: %+v", spec.Stalls)
	}
	if !spec.Active() {
		t.Fatal("full spec reported inactive")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"drop=0.05",
		"drop=0.05,dup=0.01,reorder=0.02,corrupt=0.001",
		"delay=5ms,kill=shard1@t+2s,seed=7",
		"kill=shard0@t+500ms,kill=shard1@t+2s,stall=shard2@t+1s:250ms,seed=-3",
		"",
	} {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if spec.String() != again.String() {
			t.Fatalf("%q does not round-trip: %q -> %q", in, spec.String(), again.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"drop",                   // not key=value
		"jitter=0.1",             // unknown key
		"drop=1.5",               // probability out of range
		"drop=-0.1",              // probability out of range
		"dup=abc",                // not a number
		"drop=0.6,dup=0.6",       // sum over 1
		"delay=-5ms",             // negative delay
		"delay=fast",             // not a duration
		"seed=pi",                // not an integer
		"kill=shard1",            // no @t+
		"kill=pump1@t+2s",        // target is not shardN
		"kill=shard-1@t+2s",      // negative shard
		"kill=shardx@t+2s",       // non-numeric shard
		"kill=shard1@2s",         // missing t+
		"kill=shard1@t+-2s",      // negative offset
		"kill=shard1@t+soon",     // bad duration
		"stall=shard1@t+1s",      // stall without window
		"stall=shard1@t+1s:zero", // bad window
		"stall=shard1@t+1s:-1s",  // negative window
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestSpecActive(t *testing.T) {
	if (Spec{}).Active() {
		t.Fatal("zero spec reported active")
	}
	if (Spec{Seed: 7}).Active() {
		t.Fatal("seed-only spec reported active")
	}
	for _, s := range []Spec{
		{Drop: 0.1}, {Dup: 0.1}, {Reorder: 0.1}, {Corrupt: 0.1},
		{Delay: time.Millisecond},
		{Kills: []KillEvent{{Shard: 0, At: time.Second}}},
		{Stalls: []StallEvent{{Shard: 0, At: time.Second, For: time.Second}}},
	} {
		if !s.Active() {
			t.Errorf("%+v reported inactive", s)
		}
	}
}

func TestSpecMaxShard(t *testing.T) {
	if got := (Spec{Drop: 0.5}).MaxShard(); got != -1 {
		t.Fatalf("MaxShard with no events = %d, want -1", got)
	}
	spec := Spec{
		Kills:  []KillEvent{{Shard: 1, At: time.Second}},
		Stalls: []StallEvent{{Shard: 4, At: time.Second, For: time.Second}},
	}
	if got := spec.MaxShard(); got != 4 {
		t.Fatalf("MaxShard = %d, want 4", got)
	}
}

func TestSpecKillFor(t *testing.T) {
	spec := Spec{Kills: []KillEvent{
		{Shard: 1, At: 3 * time.Second},
		{Shard: 1, At: time.Second},
		{Shard: 2, At: 2 * time.Second},
	}}
	if at, ok := spec.KillFor(1); !ok || at != time.Second {
		t.Fatalf("KillFor(1) = %v,%v; want earliest 1s", at, ok)
	}
	if _, ok := spec.KillFor(0); ok {
		t.Fatal("KillFor(0) found a kill for an unscheduled shard")
	}
}

func TestSpecStalled(t *testing.T) {
	spec := Spec{Stalls: []StallEvent{{Shard: 1, At: time.Second, For: 500 * time.Millisecond}}}
	for _, tc := range []struct {
		shard   int
		elapsed time.Duration
		want    bool
	}{
		{1, 999 * time.Millisecond, false},
		{1, time.Second, true},
		{1, 1400 * time.Millisecond, true},
		{1, 1500 * time.Millisecond, false},
		{0, 1200 * time.Millisecond, false},
	} {
		if got := spec.stalled(tc.shard, tc.elapsed); got != tc.want {
			t.Errorf("stalled(%d, %v) = %v, want %v", tc.shard, tc.elapsed, got, tc.want)
		}
	}
}

// TestRollDeterministic pins the property the whole harness rests on:
// the fault decision for datagram n of stream s is a pure function of
// (seed, stream, n).
func TestRollDeterministic(t *testing.T) {
	a := Spec{Seed: 7}
	b := Spec{Seed: 7}
	for n := uint64(0); n < 1000; n++ {
		if a.roll(3, n) != b.roll(3, n) {
			t.Fatalf("same (seed,stream,n=%d) rolled differently", n)
		}
	}
	if a.roll(3, 5) == (Spec{Seed: 8}).roll(3, 5) {
		t.Fatal("different seeds rolled identically")
	}
	if a.roll(3, 5) == a.roll(4, 5) {
		t.Fatal("different streams rolled identically")
	}
	if a.roll(3, 5) == a.roll(3, 6) {
		t.Fatal("different datagram indices rolled identically")
	}
}

func TestUniformRange(t *testing.T) {
	spec := Spec{Seed: 42}
	var sum float64
	const n = 10000
	for i := uint64(0); i < n; i++ {
		u := uniform(spec.roll(0, i))
		if u < 0 || u >= 1 {
			t.Fatalf("uniform draw %g outside [0,1)", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("uniform mean %g over %d draws; PRF badly biased", mean, n)
	}
}

func TestSpecStringEmpty(t *testing.T) {
	if s := (Spec{}).String(); s != "" {
		t.Fatalf("zero spec renders %q, want empty", s)
	}
	if s := (Spec{Drop: 0.05, Seed: 7}).String(); s != "drop=0.05,seed=7" {
		t.Fatalf("render = %q", s)
	}
	if s := (Spec{Stalls: []StallEvent{{Shard: 0, At: time.Second, For: time.Second}}}).String(); !strings.Contains(s, "stall=shard0@t+1s:1s") {
		t.Fatalf("render = %q", s)
	}
}
