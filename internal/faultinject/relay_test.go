package faultinject

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"time"

	"lockdown/internal/collector"
)

// relayHarness is a relay wired to a capturing UDP sink plus a sender
// socket dialed at the relay.
type relayHarness struct {
	relay *Relay
	send  *net.UDPConn
	recv  chan []byte
}

func newRelayHarness(t *testing.T, spec Spec) *relayHarness {
	t.Helper()
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sink.Close() })
	recv := make(chan []byte, 1024)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, _, err := sink.ReadFromUDP(buf)
			if err != nil {
				return
			}
			recv <- append([]byte(nil), buf[:n]...)
		}
	}()
	relay, err := NewRelay(spec, collector.FormatIPFIX, sink.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { relay.Close() })
	ra, err := net.ResolveUDPAddr("udp", relay.Addr())
	if err != nil {
		t.Fatal(err)
	}
	send, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close() })
	return &relayHarness{relay: relay, send: send, recv: recv}
}

// collect drains n datagrams from the sink, failing the test on timeout.
func (h *relayHarness) collect(t *testing.T, n int, timeout time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case pkt := <-h.recv:
			out = append(out, pkt)
		case <-deadline:
			t.Fatalf("got %d of %d datagrams within %v", len(out), n, timeout)
		}
	}
	return out
}

// quiet asserts nothing arrives at the sink for the window.
func (h *relayHarness) quiet(t *testing.T, window time.Duration) {
	t.Helper()
	select {
	case pkt := <-h.recv:
		t.Fatalf("unexpected datagram (%d bytes)", len(pkt))
	case <-time.After(window):
	}
}

// ipfixPkt crafts a datagram the relay attributes to the given stream:
// an IPFIX header (observation domain at bytes 12:16) padded past the
// relay's 24-byte attribution floor. The relay never decodes payloads,
// so a header is all it takes.
func ipfixPkt(stream uint32, fill byte) []byte {
	pkt := make([]byte, 32)
	binary.BigEndian.PutUint16(pkt[0:], 10) // IPFIX version
	binary.BigEndian.PutUint16(pkt[2:], uint16(len(pkt)))
	binary.BigEndian.PutUint32(pkt[12:], stream)
	for i := 16; i < len(pkt); i++ {
		pkt[i] = fill
	}
	return pkt
}

// ctrlPkt crafts a pump→bridge control frame carrying an explicit
// stream identity (the relay reads only the prefix and the stream
// field).
func ctrlPkt(stream uint32) []byte {
	pkt := append([]byte(collector.ControlMagic), 2 /*version*/, 1 /*BEGIN*/)
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], stream)
	return append(pkt, u[:]...)
}

func TestRelayForwardsClean(t *testing.T) {
	h := newRelayHarness(t, Spec{Seed: 1})
	want := [][]byte{ipfixPkt(0, 0xAA), ipfixPkt(1, 0xBB), ctrlPkt(0)}
	for _, pkt := range want {
		h.send.Write(pkt)
	}
	got := h.collect(t, len(want), 2*time.Second)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("datagram %d altered by fault-free relay", i)
		}
	}
	st := h.relay.Stats()
	if st.Total.Seen != 3 || st.Total.Forwarded != 3 || st.Total.Dropped+st.Total.Corrupted != 0 {
		t.Fatalf("stats: %+v", st.Total)
	}
	if st.Streams[0].Seen != 2 || st.Streams[1].Seen != 1 {
		t.Fatalf("per-stream attribution: %+v", st.Streams)
	}
}

func TestRelayDropAll(t *testing.T) {
	h := newRelayHarness(t, Spec{Drop: 1, Seed: 1})
	for i := 0; i < 5; i++ {
		h.send.Write(ipfixPkt(0, byte(i)))
	}
	h.quiet(t, 300*time.Millisecond)
	st := h.relay.Stats()
	if st.Total.Dropped != 5 || st.Total.Forwarded != 0 {
		t.Fatalf("stats: %+v", st.Total)
	}
}

func TestRelayDuplicateAll(t *testing.T) {
	h := newRelayHarness(t, Spec{Dup: 1, Seed: 1})
	pkt := ipfixPkt(0, 0xCC)
	h.send.Write(pkt)
	got := h.collect(t, 2, 2*time.Second)
	if !bytes.Equal(got[0], pkt) || !bytes.Equal(got[1], pkt) {
		t.Fatal("duplicate differs from original")
	}
	st := h.relay.Stats()
	if st.Total.Duplicated != 1 || st.Total.Forwarded != 2 {
		t.Fatalf("stats: %+v", st.Total)
	}
}

func TestRelayCorruptAll(t *testing.T) {
	h := newRelayHarness(t, Spec{Corrupt: 1, Seed: 1})
	pkt := ipfixPkt(0, 0xDD)
	h.send.Write(pkt)
	got := h.collect(t, 1, 2*time.Second)[0]
	if bytes.Equal(got, pkt) {
		t.Fatal("corrupted datagram identical to original")
	}
	diff := 0
	for i := range pkt {
		if got[i] != pkt[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	if st := h.relay.Stats(); st.Total.Corrupted != 1 {
		t.Fatalf("stats: %+v", st.Total)
	}
}

func TestRelayReorderSwapsWithSuccessor(t *testing.T) {
	h := newRelayHarness(t, Spec{Reorder: 1, Seed: 1})
	a, b := ipfixPkt(0, 0xA1), ipfixPkt(0, 0xB2)
	h.send.Write(a)
	time.Sleep(20 * time.Millisecond) // let the relay hold a before b arrives
	h.send.Write(b)
	got := h.collect(t, 2, 2*time.Second)
	// a was held (one hold slot per stream, so b passes) and released
	// after b: successor-swap order.
	if !bytes.Equal(got[0], b) || !bytes.Equal(got[1], a) {
		t.Fatalf("order not swapped: got %x then %x", got[0][16], got[1][16])
	}
	if st := h.relay.Stats(); st.Total.Reordered != 1 || st.Total.Forwarded != 2 {
		t.Fatalf("stats: %+v", st.Total)
	}
}

func TestRelayReorderFlushWithoutSuccessor(t *testing.T) {
	h := newRelayHarness(t, Spec{Reorder: 1, Seed: 1})
	pkt := ipfixPkt(0, 0xE7)
	start := time.Now()
	h.send.Write(pkt)
	got := h.collect(t, 1, 2*time.Second)[0]
	if !bytes.Equal(got, pkt) {
		t.Fatal("flushed datagram altered")
	}
	// The last datagram of a burst has no successor; only the flush
	// timer can release it.
	if waited := time.Since(start); waited < holdFlush/2 {
		t.Fatalf("released after %v, before the flush window", waited)
	}
}

func TestRelayStallWindow(t *testing.T) {
	h := newRelayHarness(t, Spec{
		Seed:   1,
		Stalls: []StallEvent{{Shard: 0, At: 0, For: 400 * time.Millisecond}},
	})
	h.relay.SetEpoch(time.Now())
	h.send.Write(ipfixPkt(0, 0x01)) // inside the window: blackholed
	h.send.Write(ipfixPkt(1, 0x02)) // other shard: unaffected
	got := h.collect(t, 1, 2*time.Second)
	if s := binary.BigEndian.Uint32(got[0][12:]); s != 1 {
		t.Fatalf("stream %d passed the stall window", s)
	}
	time.Sleep(450 * time.Millisecond) // window over
	h.send.Write(ipfixPkt(0, 0x03))
	h.collect(t, 1, 2*time.Second)
	st := h.relay.Stats()
	if st.Streams[0].Stalled != 1 || st.Streams[0].Forwarded != 1 {
		t.Fatalf("stream 0 counts: %+v", st.Streams[0])
	}
}

func TestRelayStallWithoutEpochInactive(t *testing.T) {
	// Without SetEpoch the stall schedule is unanchored and never fires.
	h := newRelayHarness(t, Spec{
		Seed:   1,
		Stalls: []StallEvent{{Shard: 0, At: 0, For: time.Hour}},
	})
	h.send.Write(ipfixPkt(0, 0x11))
	h.collect(t, 1, 2*time.Second)
}

func TestRelayDelay(t *testing.T) {
	h := newRelayHarness(t, Spec{Delay: 80 * time.Millisecond, Seed: 1})
	start := time.Now()
	h.send.Write(ipfixPkt(0, 0x21))
	h.send.Write(ipfixPkt(0, 0x22))
	got := h.collect(t, 2, 2*time.Second)
	if waited := time.Since(start); waited < 60*time.Millisecond {
		t.Fatalf("delayed datagrams arrived after %v", waited)
	}
	if got[0][16] != 0x21 || got[1][16] != 0x22 {
		t.Fatal("uniform delay reordered datagrams")
	}
}

func TestRelayPassesUnattributableDatagrams(t *testing.T) {
	// Shorter than any export header and not a control frame: the relay
	// cannot attribute it to a stream and must leave it alone even at
	// drop=1.
	h := newRelayHarness(t, Spec{Drop: 1, Seed: 1})
	runt := []byte("tiny datagram")
	h.send.Write(runt)
	got := h.collect(t, 1, 2*time.Second)[0]
	if !bytes.Equal(got, runt) {
		t.Fatal("unattributable datagram altered")
	}
}

// TestRelayDeterministicSchedule pins reproducibility end to end: two
// relays with the same seed fed the same per-stream datagram sequence
// make identical fault decisions, and a different seed diverges.
func TestRelayDeterministicSchedule(t *testing.T) {
	send := func(spec Spec) RelayStats {
		h := newRelayHarness(t, spec)
		for i := 0; i < 400; i++ {
			h.send.Write(ipfixPkt(uint32(i%3), byte(i)))
			if i%50 == 49 {
				time.Sleep(time.Millisecond) // let the relay drain; kernel drops are not part of the schedule
			}
		}
		// Drain until the relay has accounted every datagram; forwarded
		// ones land in the sink, dropped ones only in the stats.
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := h.relay.Stats()
			if st.Total.Seen == 400 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("relay saw %d of 400 datagrams", st.Total.Seen)
			}
			time.Sleep(10 * time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond) // let in-flight forwards settle
		return h.relay.Stats()
	}
	spec := Spec{Drop: 0.2, Dup: 0.1, Corrupt: 0.1, Seed: 7}
	a, b := send(spec), send(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	c := send(Spec{Drop: 0.2, Dup: 0.1, Corrupt: 0.1, Seed: 8})
	if reflect.DeepEqual(a.Streams, c.Streams) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRelayCorruptDeterministic(t *testing.T) {
	send := func() []byte {
		h := newRelayHarness(t, Spec{Corrupt: 1, Seed: 9})
		h.send.Write(ipfixPkt(2, 0x5A))
		return h.collect(t, 1, 2*time.Second)[0]
	}
	if !bytes.Equal(send(), send()) {
		t.Fatal("same seed corrupted the same datagram differently")
	}
}

func TestNewRelayBadDst(t *testing.T) {
	if _, err := NewRelay(Spec{Drop: 1}, collector.FormatIPFIX, "this is not an address"); err == nil {
		t.Fatal("NewRelay accepted a garbage destination")
	}
}

func TestRelayCloseIdempotent(t *testing.T) {
	h := newRelayHarness(t, Spec{Seed: 1})
	if err := h.relay.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.relay.Close(); err != nil {
		t.Fatal(err)
	}
}
