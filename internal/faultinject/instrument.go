package faultinject

import "lockdown/internal/obs"

// Instrument registers the relay's fault accounting with reg as
// scrape-time snapshots of the same counts Stats() reports — the
// lockdown_chaos_* families read the mutex-guarded per-stream counts, so
// /metrics and the CLI's chaos summary can never disagree.
func (r *Relay) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	total := func(pick func(Counts) int64) func() float64 {
		return func() float64 { return float64(pick(r.Stats().Total)) }
	}
	reg.CounterFunc("lockdown_chaos_seen_total",
		"Datagrams that entered the chaos relay.",
		total(func(c Counts) int64 { return c.Seen }))
	reg.CounterFunc("lockdown_chaos_forwarded_total",
		"Datagrams the relay put on the wire (duplicates counted).",
		total(func(c Counts) int64 { return c.Forwarded }))
	reg.CounterFunc("lockdown_chaos_dropped_total",
		"Datagrams dropped by the fault schedule.",
		total(func(c Counts) int64 { return c.Dropped }))
	reg.CounterFunc("lockdown_chaos_duplicated_total",
		"Datagrams duplicated by the fault schedule.",
		total(func(c Counts) int64 { return c.Duplicated }))
	reg.CounterFunc("lockdown_chaos_reordered_total",
		"Datagrams held for reordering by the fault schedule.",
		total(func(c Counts) int64 { return c.Reordered }))
	reg.CounterFunc("lockdown_chaos_corrupted_total",
		"Datagrams corrupted by the fault schedule.",
		total(func(c Counts) int64 { return c.Corrupted }))
	reg.CounterFunc("lockdown_chaos_stalled_total",
		"Datagrams blackholed by a scheduled stall window.",
		total(func(c Counts) int64 { return c.Stalled }))
}

// SetTracer attaches a tracer; every injected fault is then recorded as
// an instant event (drop, dup, reorder, corrupt, stall) with its stream.
func (r *Relay) SetTracer(t *obs.Tracer) {
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}
