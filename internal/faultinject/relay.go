package faultinject

import (
	"fmt"
	"net"
	"sync"
	"time"

	"lockdown/internal/collector"
	"lockdown/internal/obs"
	"lockdown/internal/replay"
)

// Counts is the per-stream fault accounting of a Relay.
type Counts struct {
	Seen       int64 // datagrams that entered the relay
	Forwarded  int64 // datagrams written to the bridge (duplicates counted)
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Corrupted  int64
	Stalled    int64 // datagrams blackholed by a stall window
}

// RelayStats is a snapshot of a Relay's accounting.
type RelayStats struct {
	Total   Counts
	Streams map[uint32]Counts
}

// holdFlush bounds how long a reorder hold waits for a successor
// datagram of the same stream before the held datagram is forwarded
// anyway (the last datagram of a burst has no successor to swap with).
const holdFlush = 100 * time.Millisecond

// delayQueue bounds the backlog of the fixed-delay sender; a full queue
// falls back to an immediate write rather than blocking the relay.
const delayQueue = 4096

// streamState is the relay's per-stream fault machinery: the PRF
// datagram counter and the reorder hold slot.
type streamState struct {
	n      uint64 // datagrams seen; PRF index of the next one
	held   []byte // datagram held for reordering (nil = none)
	counts Counts
}

// Relay is the wire injection point: a UDP proxy the cluster splices
// between its pumps and the bridge's data socket. Every datagram is
// attributed to its stream (control frames carry the stream explicitly,
// flow packets carry it in their export header) and rolled against the
// spec's PRF; at most one fault applies per datagram. Unattributable
// datagrams pass through untouched.
type Relay struct {
	spec   Spec
	format collector.Format
	ln     *net.UDPConn
	dst    *net.UDPConn

	mu      sync.Mutex
	epoch   time.Time
	streams map[uint32]*streamState
	tracer  *obs.Tracer // fault instants (nil = no tracing); see SetTracer

	delayCh chan delayedPkt
	done    chan struct{}
	wg      sync.WaitGroup

	closeOnce sync.Once
}

type delayedPkt struct {
	due time.Time
	pkt []byte
}

// NewRelay opens the relay socket and starts forwarding to the bridge
// data address. SetEpoch arms the stall schedule; without it no stall
// window is ever active.
func NewRelay(spec Spec, format collector.Format, dstAddr string) (*Relay, error) {
	ln, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("faultinject: listen: %w", err)
	}
	// The relay must only lose datagrams its spec tells it to lose: a
	// pump bursting faster than the fault rolls drain would otherwise
	// add unaccounted kernel-buffer drops on top of the schedule.
	ln.SetReadBuffer(4 << 20)
	ua, err := net.ResolveUDPAddr("udp", dstAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("faultinject: resolve %q: %w", dstAddr, err)
	}
	dst, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("faultinject: dial %q: %w", dstAddr, err)
	}
	r := &Relay{
		spec:    spec,
		format:  format,
		ln:      ln,
		dst:     dst,
		streams: make(map[uint32]*streamState),
		done:    make(chan struct{}),
	}
	if spec.Delay > 0 {
		r.delayCh = make(chan delayedPkt, delayQueue)
		r.wg.Add(1)
		go r.delaySender()
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// Addr returns the relay's listen address; pumps export here instead of
// to the bridge directly.
func (r *Relay) Addr() string { return r.ln.LocalAddr().String() }

// SetEpoch anchors the stall schedule's t+0 (the cluster calls it at
// Start).
func (r *Relay) SetEpoch(t time.Time) {
	r.mu.Lock()
	r.epoch = t
	r.mu.Unlock()
}

// Stats returns a snapshot of the relay's fault accounting.
func (r *Relay) Stats() RelayStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RelayStats{Streams: make(map[uint32]Counts, len(r.streams))}
	for id, st := range r.streams {
		s.Streams[id] = st.counts
		s.Total.Seen += st.counts.Seen
		s.Total.Forwarded += st.counts.Forwarded
		s.Total.Dropped += st.counts.Dropped
		s.Total.Duplicated += st.counts.Duplicated
		s.Total.Reordered += st.counts.Reordered
		s.Total.Corrupted += st.counts.Corrupted
		s.Total.Stalled += st.counts.Stalled
	}
	return s
}

// Close stops the relay and releases its sockets.
func (r *Relay) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.done)
		err = r.ln.Close()
		r.wg.Wait()
		r.dst.Close()
	})
	return err
}

func (r *Relay) run() {
	defer r.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := r.ln.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		// Copy: held and delayed datagrams outlive the read buffer.
		pkt := append([]byte(nil), buf[:n]...)
		r.process(pkt)
	}
}

// streamOf attributes a datagram: control frames name their stream
// explicitly, flow packets carry it in their export header.
func (r *Relay) streamOf(pkt []byte) (uint32, bool) {
	if id, ok := replay.FrameStream(pkt); ok {
		return id, true
	}
	if len(pkt) < 24 { // shorter than any export header; leave it alone
		return 0, false
	}
	return collector.StreamID(r.format, pkt), true
}

// process rolls one datagram against the fault model and forwards,
// drops, duplicates, holds, delays or corrupts it accordingly.
func (r *Relay) process(pkt []byte) {
	stream, ok := r.streamOf(pkt)
	if !ok {
		r.send(pkt)
		return
	}
	r.mu.Lock()
	st := r.streams[stream]
	if st == nil {
		st = &streamState{}
		r.streams[stream] = st
	}
	st.counts.Seen++
	tr := r.tracer
	if !r.epoch.IsZero() && r.spec.stalled(int(stream), time.Since(r.epoch)) {
		st.counts.Stalled++
		st.n++
		held := st.held
		st.held = nil
		r.mu.Unlock()
		if tr != nil {
			tr.Instant("fault-stall", "chaos", map[string]any{"stream": stream})
		}
		if held != nil {
			r.send(held)
		}
		return
	}
	u := uniform(r.spec.roll(stream, st.n))
	st.n++

	// One fault per datagram: the draw lands in at most one interval.
	var out [][]byte // datagrams to put on the wire now, in order
	hold := false
	fault := ""
	switch {
	case u < r.spec.Drop:
		st.counts.Dropped++
		fault = "fault-drop"
	case u < r.spec.Drop+r.spec.Dup:
		st.counts.Duplicated++
		fault = "fault-dup"
		out = append(out, pkt, pkt)
	case u < r.spec.Drop+r.spec.Dup+r.spec.Reorder:
		if st.held == nil {
			// Hold this datagram; it is released after the stream's next
			// datagram (or by the flush timer if none follows).
			st.counts.Reordered++
			fault = "fault-reorder"
			st.held = pkt
			hold = true
			time.AfterFunc(holdFlush, func() { r.flushHeld(stream, pkt) })
		} else {
			out = append(out, pkt) // one hold slot per stream
		}
	case u < r.spec.Drop+r.spec.Dup+r.spec.Reorder+r.spec.Corrupt:
		st.counts.Corrupted++
		fault = "fault-corrupt"
		out = append(out, r.corrupt(stream, st.n, pkt))
	default:
		out = append(out, pkt)
	}
	var held []byte
	if !hold && st.held != nil {
		held = st.held
		st.held = nil
	}
	st.counts.Forwarded += int64(len(out))
	if held != nil {
		st.counts.Forwarded++
	}
	r.mu.Unlock()

	if tr != nil && fault != "" {
		tr.Instant(fault, "chaos", map[string]any{"stream": stream})
	}
	for _, p := range out {
		r.send(p)
	}
	if held != nil {
		r.send(held)
	}
}

// flushHeld releases a reorder hold that never saw a successor. The
// identity check (slice pointer) makes a stale timer a no-op.
func (r *Relay) flushHeld(stream uint32, pkt []byte) {
	r.mu.Lock()
	st := r.streams[stream]
	flush := st != nil && len(st.held) > 0 && &st.held[0] == &pkt[0]
	if flush {
		st.held = nil
		st.counts.Forwarded++
	}
	r.mu.Unlock()
	if flush {
		r.send(pkt)
	}
}

// corrupt flips one byte, chosen by a PRF draw distinct from the fault
// decision so the flip position is also reproducible.
func (r *Relay) corrupt(stream uint32, n uint64, pkt []byte) []byte {
	h := r.spec.roll(stream, n+1<<62) // disjoint index space from fault draws
	out := append([]byte(nil), pkt...)
	idx := int(h % uint64(len(out)))
	out[idx] ^= byte(1 + (h>>32)%255) // never a zero flip
	return out
}

// send puts one datagram on the wire to the bridge, through the fixed
// delay queue when the spec asks for latency.
func (r *Relay) send(pkt []byte) {
	if r.delayCh == nil {
		r.dst.Write(pkt)
		return
	}
	select {
	case r.delayCh <- delayedPkt{due: time.Now().Add(r.spec.Delay), pkt: pkt}:
	case <-r.done:
	default:
		r.dst.Write(pkt) // full queue: deliver now rather than block the relay
	}
}

// delaySender drains the delay queue in order, sleeping each datagram
// out to its due time. A uniform delay preserves ordering.
func (r *Relay) delaySender() {
	defer r.wg.Done()
	for {
		select {
		case d := <-r.delayCh:
			if wait := time.Until(d.due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-r.done:
					return
				}
			}
			r.dst.Write(d.pkt)
		case <-r.done:
			return
		}
	}
}
