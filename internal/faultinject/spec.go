// Package faultinject is the cluster's deterministic chaos harness: a
// seeded fault model for the replay wire and the pump supervisor, so a
// failure run is as replayable as a clean one.
//
// A Spec is parsed from a compact comma-separated string
// (`drop=0.05,dup=0.01,kill=shard1@t+2s,seed=7`) and drives two
// injection points:
//
//   - The Relay sits on the pump → bridge data path and applies
//     per-datagram faults — drop, duplicate, reorder, delay, corrupt —
//     decided by a splitmix64-based PRF keyed on (seed, stream,
//     per-stream datagram index). The decision for datagram n of stream
//     s depends on nothing else, so the same seed over the same
//     per-stream datagram sequence reproduces the same fault schedule
//     regardless of wall-clock timing or interleaving with other
//     streams. Stall windows blackhole one shard's datagrams for a
//     scheduled interval.
//   - The cluster supervisor consumes the kill schedule (KillFor):
//     `kill=shardN@t+X` kills shard N's pump X after cluster start and
//     re-kills every restarted incarnation, so the shard burns its
//     restart budget and the survival path — give-up, re-partition —
//     is exercised deterministically.
//
// Every fault the relay injects is recoverable by the bridge's
// retry/verify machinery (a corrupted packet fails decode or
// verification and is re-requested), so chaos runs remain byte-identical
// to clean runs; the chaos golden test in internal/cluster pins that.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// KillEvent schedules a permanent kill of one shard's pump: the pump is
// killed At after cluster start, and every restarted incarnation is
// killed again immediately, so the shard exhausts its restart budget.
type KillEvent struct {
	Shard int
	At    time.Duration
}

// StallEvent blackholes one shard's datagrams at the relay for a window
// [At, At+For) after cluster start. The pump stays alive; the bridge
// sees pure loss and retries through it.
type StallEvent struct {
	Shard int
	At    time.Duration
	For   time.Duration
}

// Spec is a reproducible fault schedule. The probability fields are
// per-datagram and mutually exclusive (one PRF draw per datagram picks
// at most one fault), so their sum must not exceed 1.
type Spec struct {
	Drop    float64 // P(datagram dropped)
	Dup     float64 // P(datagram sent twice)
	Reorder float64 // P(datagram held and delivered after its successor)
	Corrupt float64 // P(one byte of the datagram flipped)

	// Delay adds a fixed latency to every forwarded datagram (0 = no
	// added latency). Order is preserved: a uniform delay only shifts the
	// stream in time.
	Delay time.Duration

	// Seed keys the PRF; the same seed reproduces the same per-stream
	// fault pattern.
	Seed int64

	Kills  []KillEvent
	Stalls []StallEvent
}

// ParseSpec parses the -chaos flag syntax: comma-separated k=v pairs.
//
//	drop=0.05            dup=0.01         reorder=0.02     corrupt=0.001
//	delay=5ms            seed=7
//	kill=shard1@t+2s     stall=shard0@t+1s:500ms
//
// kill= and stall= may repeat. Shard indices are validated against the
// cluster size by cluster.Spec, not here.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			spec.Drop, err = parseProb(key, val)
		case "dup":
			spec.Dup, err = parseProb(key, val)
		case "reorder":
			spec.Reorder, err = parseProb(key, val)
		case "corrupt":
			spec.Corrupt, err = parseProb(key, val)
		case "delay":
			spec.Delay, err = time.ParseDuration(val)
			if err == nil && spec.Delay < 0 {
				err = fmt.Errorf("faultinject: delay must not be negative")
			}
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "kill":
			var ev KillEvent
			ev.Shard, ev.At, _, err = parseEvent(val, false)
			spec.Kills = append(spec.Kills, ev)
		case "stall":
			var ev StallEvent
			ev.Shard, ev.At, ev.For, err = parseEvent(val, true)
			spec.Stalls = append(spec.Stalls, ev)
		default:
			return Spec{}, fmt.Errorf("faultinject: unknown fault %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faultinject: %s=%s: %w", key, val, err)
		}
	}
	if sum := spec.Drop + spec.Dup + spec.Reorder + spec.Corrupt; sum > 1 {
		return Spec{}, fmt.Errorf("faultinject: fault probabilities sum to %g, must not exceed 1", sum)
	}
	return spec, nil
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

// parseEvent parses `shardN@t+DUR` (kill) or `shardN@t+DUR:DUR` (stall).
func parseEvent(val string, withWindow bool) (shard int, at, window time.Duration, err error) {
	target, when, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want shardN@t+duration")
	}
	num, ok := strings.CutPrefix(target, "shard")
	if !ok {
		return 0, 0, 0, fmt.Errorf("target %q does not name a shard", target)
	}
	shard, err = strconv.Atoi(num)
	if err != nil || shard < 0 {
		return 0, 0, 0, fmt.Errorf("bad shard index %q", num)
	}
	offset, ok := strings.CutPrefix(when, "t+")
	if !ok {
		return 0, 0, 0, fmt.Errorf("time %q must be t+duration", when)
	}
	if withWindow {
		var winStr string
		offset, winStr, ok = strings.Cut(offset, ":")
		if !ok {
			return 0, 0, 0, fmt.Errorf("stall needs a window: shardN@t+start:duration")
		}
		window, err = time.ParseDuration(winStr)
		if err != nil || window <= 0 {
			return 0, 0, 0, fmt.Errorf("bad stall window %q", winStr)
		}
	}
	at, err = time.ParseDuration(offset)
	if err != nil || at < 0 {
		return 0, 0, 0, fmt.Errorf("bad time offset %q", offset)
	}
	return shard, at, window, nil
}

// String renders the spec in ParseSpec's syntax (canonical field order;
// round-trips through ParseSpec).
func (s Spec) String() string {
	var parts []string
	add := func(key string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", key, p))
		}
	}
	add("drop", s.Drop)
	add("dup", s.Dup)
	add("reorder", s.Reorder)
	add("corrupt", s.Corrupt)
	if s.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", s.Delay))
	}
	kills := append([]KillEvent(nil), s.Kills...)
	sort.Slice(kills, func(i, j int) bool {
		return kills[i].At < kills[j].At || (kills[i].At == kills[j].At && kills[i].Shard < kills[j].Shard)
	})
	for _, k := range kills {
		parts = append(parts, fmt.Sprintf("kill=shard%d@t+%s", k.Shard, k.At))
	}
	stalls := append([]StallEvent(nil), s.Stalls...)
	sort.Slice(stalls, func(i, j int) bool {
		return stalls[i].At < stalls[j].At || (stalls[i].At == stalls[j].At && stalls[i].Shard < stalls[j].Shard)
	})
	for _, st := range stalls {
		parts = append(parts, fmt.Sprintf("stall=shard%d@t+%s:%s", st.Shard, st.At, st.For))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	return strings.Join(parts, ",")
}

// Active reports whether the spec injects anything at all.
func (s Spec) Active() bool {
	return s.Drop > 0 || s.Dup > 0 || s.Reorder > 0 || s.Corrupt > 0 ||
		s.Delay > 0 || len(s.Kills) > 0 || len(s.Stalls) > 0
}

// MaxShard returns the largest shard index any scheduled event names
// (-1 if none); cluster.Spec validates it against the shard count.
func (s Spec) MaxShard() int {
	maxShard := -1
	for _, k := range s.Kills {
		maxShard = max(maxShard, k.Shard)
	}
	for _, st := range s.Stalls {
		maxShard = max(maxShard, st.Shard)
	}
	return maxShard
}

// KillFor returns the earliest scheduled kill offset for a shard.
func (s Spec) KillFor(shard int) (time.Duration, bool) {
	at, found := time.Duration(0), false
	for _, k := range s.Kills {
		if k.Shard == shard && (!found || k.At < at) {
			at, found = k.At, true
		}
	}
	return at, found
}

// stalled reports whether a shard's datagrams are inside a blackhole
// window at the given offset from cluster start.
func (s Spec) stalled(shard int, elapsed time.Duration) bool {
	for _, st := range s.Stalls {
		if st.Shard == shard && elapsed >= st.At && elapsed < st.At+st.For {
			return true
		}
	}
	return false
}

// splitmix64 is the PRF core: a bijective 64-bit mix with good
// avalanche, cheap enough to run per datagram.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll derives the decision word for datagram n of a stream: a pure
// function of (seed, stream, n), independent of timing and of every
// other stream.
func (s Spec) roll(stream uint32, n uint64) uint64 {
	return splitmix64(uint64(s.Seed) ^ splitmix64(uint64(stream)^0x632BE59BD9B4E019) ^ splitmix64(n))
}

// uniform maps a decision word to [0,1).
func uniform(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
