package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes of a
// registry covering every instrument shape: counter, gauge, func-backed
// series, a labelled vec and a histogram. The format is deterministic
// (families sorted by name, series by label value), so the golden string
// is stable.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("lockdown_a_total", "Things counted.").Add(3)
	r.Gauge("lockdown_b", "A level.").Set(-2)
	r.GaugeFunc("lockdown_c", "Read at scrape.", func() float64 { return 1.5 })
	vec := r.CounterVec("lockdown_d_total", "Per-stream things.", "stream")
	vec.With("1").Add(10)
	vec.With("0").Add(4)
	h := r.Histogram("lockdown_e_seconds", "Latencies with \"quotes\".", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lockdown_a_total Things counted.
# TYPE lockdown_a_total counter
lockdown_a_total 3
# HELP lockdown_b A level.
# TYPE lockdown_b gauge
lockdown_b -2
# HELP lockdown_c Read at scrape.
# TYPE lockdown_c gauge
lockdown_c 1.5
# HELP lockdown_d_total Per-stream things.
# TYPE lockdown_d_total counter
lockdown_d_total{stream="0"} 4
lockdown_d_total{stream="1"} 10
# HELP lockdown_e_seconds Latencies with "quotes".
# TYPE lockdown_e_seconds histogram
lockdown_e_seconds_bucket{le="0.5"} 1
lockdown_e_seconds_bucket{le="2"} 2
lockdown_e_seconds_bucket{le="+Inf"} 3
lockdown_e_seconds_sum 100.1
lockdown_e_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestServeScrapeWhileRunning starts the HTTP server on an ephemeral
// port and scrapes /metrics while writers hammer the registry,
// checking status, content type and that the self-metrics plus a hot
// counter appear in the body.
func TestServeScrapeWhileRunning(t *testing.T) {
	reg := NewRegistry()
	hot := reg.Counter("lockdown_hot_total", "Incremented during the scrape.")
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					hot.Inc()
				}
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	for i := 0; i < 10; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("scrape %d: content type %q", i, ct)
		}
		for _, family := range []string{"lockdown_hot_total", "lockdown_goroutines", "lockdown_uptime_seconds"} {
			if !strings.Contains(string(body), family) {
				t.Fatalf("scrape %d: family %s missing from body:\n%s", i, family, body)
			}
		}
	}
}
