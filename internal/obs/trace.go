package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer writes Chrome trace_event JSON (the `chrome://tracing` /
// Perfetto format): one complete ("X") event per finished span, instant
// ("i") events for point-in-time occurrences, and thread-name metadata so
// the lanes read as a worker view. Load the file at https://ui.perfetto.dev
// or chrome://tracing.
//
// Spans are value types carrying their own start time, so a Span on a nil
// *Tracer still measures durations — the engine derives the
// `_runtime/wall-ms` stamp from the same Span that emits the experiment's
// trace event, which is what keeps the timing table, the JSON output and
// the trace file on one clock.
//
// Lane (tid) allocation: every root span takes the smallest free virtual
// thread id and returns it when it ends, so concurrent spans occupy a
// compact set of lanes (like a worker pool view) and sequential spans
// reuse lane 1. Child spans share their parent's lane — valid because a
// child runs strictly inside its parent on the same goroutine; concurrent
// sub-work (scan chunks) starts root spans of its own instead.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // underlying file, when Create opened it
	epoch  time.Time
	events int64
	first  bool
	closed bool
	named  map[int]bool // lanes that already carry thread_name metadata
	free   []int        // released lanes, kept sorted ascending
	next   int          // next never-used lane
}

// NewTracer starts a tracer writing to w. The caller must Close it to
// finish the JSON document.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{
		w:     bufio.NewWriter(w),
		epoch: time.Now(),
		first: true,
		named: make(map[int]bool),
		next:  1,
	}
	t.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	t.emitLocked(traceEvent{Name: "process_name", Ph: "M", Args: map[string]any{"name": "lockdown"}})
	return t
}

// Create opens (truncating) a trace file at path.
func Create(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	t := NewTracer(f)
	t.c = f
	return t, nil
}

// Close terminates the JSON document and closes the underlying file (when
// Create opened one). Spans ended after Close are measured but not
// written. Close is idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.w.WriteString("\n]}\n")
	err := t.w.Flush()
	t.mu.Unlock()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Events returns how many events have been written so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// traceEvent is the wire schema of one trace_event entry. Emission goes
// through encoding/json, so every event in the file parses by
// construction; the round-trip test then checks the nesting invariants.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// emitLocked writes one event; the caller holds t.mu.
func (t *Tracer) emitLocked(ev traceEvent) {
	if t.closed {
		return
	}
	blob, err := json.Marshal(ev)
	if err != nil {
		return // unmarshalable arg; drop the event rather than the file
	}
	if !t.first {
		t.w.WriteString(",\n")
	}
	t.first = false
	t.w.Write(blob)
	t.events++
}

// micros converts a timestamp to trace microseconds since the tracer
// epoch.
func (t *Tracer) micros(at time.Time) float64 {
	return float64(at.Sub(t.epoch)) / float64(time.Microsecond)
}

// acquireLane takes the smallest free virtual thread id and names its
// lane on first use.
func (t *Tracer) acquireLane() int {
	t.mu.Lock()
	var tid int
	if len(t.free) > 0 {
		tid = t.free[0]
		t.free = t.free[1:]
	} else {
		tid = t.next
		t.next++
	}
	if !t.named[tid] {
		t.named[tid] = true
		t.emitLocked(traceEvent{Name: "thread_name", Ph: "M", TID: tid,
			Args: map[string]any{"name": "lane " + strconv.Itoa(tid)}})
	}
	t.mu.Unlock()
	return tid
}

// releaseLane returns a lane to the freelist.
func (t *Tracer) releaseLane(tid int) {
	t.mu.Lock()
	i := sort.SearchInts(t.free, tid)
	t.free = append(t.free, 0)
	copy(t.free[i+1:], t.free[i:])
	t.free[i] = tid
	t.mu.Unlock()
}

// Span is one in-flight measurement. It is a small value: copying is
// cheap and a Span from a nil Tracer still measures wall time, it just
// emits nothing.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	tid   int
	root  bool
	start time.Time
}

// Start opens a root span on its own lane. Valid on a nil tracer.
func (t *Tracer) Start(name, cat string) Span {
	s := Span{tr: t, name: name, cat: cat, root: true, start: time.Now()}
	if t != nil {
		s.tid = t.acquireLane()
	}
	return s
}

// Child opens a sub-span on the parent's lane. The child must be strictly
// sequential inside the parent (same goroutine); concurrent sub-work
// starts root spans instead, or the lanes would show overlapping slices.
func (s Span) Child(name, cat string) Span {
	return Span{tr: s.tr, name: name, cat: cat, tid: s.tid, start: time.Now()}
}

// Active reports whether ending this span will emit an event — the guard
// hot paths use before building args.
func (s Span) Active() bool { return s.tr != nil }

// End closes the span, emits its complete event and returns the measured
// duration (also on a nil tracer, where nothing is emitted).
func (s Span) End() time.Duration { return s.EndArgs(nil) }

// EndArgs is End with event arguments attached (shown in the Perfetto
// slice details). Callers on hot paths should guard with Active before
// building the map.
func (s Span) EndArgs(args map[string]any) time.Duration {
	d := time.Since(s.start)
	t := s.tr
	if t == nil {
		return d
	}
	dur := float64(d) / float64(time.Microsecond)
	t.mu.Lock()
	t.emitLocked(traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: t.micros(s.start), Dur: &dur, TID: s.tid, Args: args,
	})
	t.mu.Unlock()
	if s.root {
		t.releaseLane(s.tid)
	}
	return d
}

// Instant emits a point-in-time event (thread-scoped, lane 0 — Perfetto
// renders them as markers). Valid on a nil tracer.
func (t *Tracer) Instant(name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitLocked(traceEvent{Name: name, Cat: cat, Ph: "i", TS: t.micros(time.Now()), S: "t", Args: args})
	t.mu.Unlock()
}
