package obs

import (
	"testing"
	"time"
)

// TestNilRegistryHandsOutWorkingInstruments pins the central contract:
// every constructor on a nil *Registry returns a standalone, fully
// functional instrument, so call sites never branch on "is observability
// on".
func TestNilRegistryHandsOutWorkingInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("standalone counter = %d, want 3", c.Value())
	}
	g := r.Gauge("x", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("standalone gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("x_seconds", "", DurationBuckets)
	h.Observe(0.01)
	h.Observe(100)
	if h.Count() != 2 || h.Sum() != 100.01 {
		t.Errorf("standalone histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	vc := r.CounterVec("x_by_stream_total", "", "stream").With("3")
	vc.Inc()
	if vc.Value() != 1 {
		t.Errorf("standalone vec counter = %d, want 1", vc.Value())
	}
	r.CounterFunc("f_total", "", func() float64 { return 1 }) // must not panic
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestRegistryGetOrCreate pins that a name resolves to one shared
// instrument, and that kind or label-shape reuse panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "first")
	b := r.Counter("shared_total", "second help ignored")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("shared counter not shared")
	}
	v1 := r.CounterVec("vec_total", "", "stream").With("0")
	v2 := r.CounterVec("vec_total", "", "stream").With("0")
	if v1 != v2 {
		t.Error("same vec label value returned distinct counters")
	}

	mustPanic(t, "kind reuse", func() { r.Gauge("shared_total", "") })
	mustPanic(t, "label-shape reuse", func() { r.Counter("vec_total", "") })
	mustPanic(t, "empty vec label", func() { r.CounterVec("v2_total", "", "") })
	mustPanic(t, "non-ascending bounds", func() { NewHistogram([]float64{1, 1}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

// TestHistogramBuckets pins the bucket assignment and cumulative
// snapshot semantics (Prometheus le: v <= bound).
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11, 1e9} {
		h.Observe(v)
	}
	cum := h.snapshot()
	// 0.5 and 1 land in le=1; 1.5 and 10 in le=10; 11 and 1e9 beyond.
	if cum[0] != 2 || cum[1] != 4 || cum[2] != 6 {
		t.Errorf("cumulative buckets = %v, want [2 4 6]", cum)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
}

// TestDisabledPathAllocationFree asserts the zero-alloc contract of
// every hot-path instrument operation, with and without a registry, and
// of spans on a nil tracer. The benchgate entries pin the same property
// against regression in the instrumented loops.
func TestDisabledPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", DurationBuckets)
	var tr *Tracer

	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(4) }},
		{"Histogram.Observe", func() { h.Observe(0.02) }},
		{"nil-tracer span", func() {
			sp := tr.Start("x", "y")
			if sp.Active() {
				t.Fatal("span on nil tracer is active")
			}
			sp.End()
		}},
		{"nil-tracer instant", func() { tr.Instant("x", "y", nil) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

// TestSpanMeasuresWithoutTracer pins the one-clock property the engine
// relies on: a Span from a nil tracer still returns a real duration.
func TestSpanMeasuresWithoutTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("exp", "experiment")
	time.Sleep(5 * time.Millisecond)
	if d := sp.End(); d < 5*time.Millisecond {
		t.Errorf("span measured %v, want >= 5ms", d)
	}
}

func BenchmarkObsCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkObsSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench", "bench")
		sp.End()
	}
}
