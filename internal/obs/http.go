package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server serves a registry's metrics (and live pprof) over HTTP: the
// `-metrics-addr` backend. Endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/pprof/  the standard net/http/pprof index (profile, heap,
//	               goroutine, trace, ...), so live profiling complements
//	               the file-based -cpuprofile/-memprofile flags
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port; Addr reports the result) and
// serves the registry in a background goroutine until Close. It also
// registers the process-level self-metrics every lockdown command shares
// (goroutines, uptime) so a scrape is never empty.
func Serve(addr string, reg *Registry) (*Server, error) {
	start := time.Now()
	reg.GaugeFunc("lockdown_goroutines", "Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.CounterFunc("lockdown_uptime_seconds", "Seconds since the metrics server started.",
		func() float64 { return time.Since(start).Seconds() })

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{reg: reg, ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
