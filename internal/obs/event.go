package obs

import (
	"fmt"
	"strconv"
)

// Event is one structured run event: what the CLI's reporter renders to
// stderr and what the tracer records as an instant, so the human summary
// and the trace file are two views of the same value. The engine's cache
// summary, the bridge wire accounting, cluster health/rebalance lines,
// chaos relay counts and the DEGRADED RUN stamp are all Events — one
// renderer (report.WriteEvents) replaces the per-command fmt.Fprintf
// blocks that used to drift apart.
type Event struct {
	// Cat groups events ("cache", "bridge", "cluster", "chaos",
	// "degraded"); the tracer uses it as the instant's category.
	Cat string
	// Msg is the short human headline ("flow-batch tiers", "rebalance").
	Msg string
	// Fields are ordered key=value details; order is presentation order.
	Fields []Field
	// Severity marks events a reader must not miss; the reporter renders
	// them with an upper-case banner (the DEGRADED RUN stamp).
	Severity Severity
	// Sub marks a detail line the reporter indents under the preceding
	// headline event (per-shard accounting under the bridge totals, the
	// per-key list under the DEGRADED RUN stamp).
	Sub bool
}

// Severity classifies an event for the reporter.
type Severity int

const (
	// Info events are routine accounting.
	Info Severity = iota
	// Warn events flag losses or restarts that recovery absorbed.
	Warn
	// Degraded events mean the run's output is incomplete.
	Degraded
)

// Field is one ordered key/value pair of an Event.
type Field struct {
	Key string
	Val string
}

// F builds a string field.
func F(key, val string) Field { return Field{Key: key, Val: val} }

// Fi builds an integer field.
func Fi(key string, v int64) Field { return Field{Key: key, Val: strconv.FormatInt(v, 10)} }

// Ff builds a float field with one decimal (sizes in MB, seconds).
func Ff(key string, v float64) Field { return Field{Key: key, Val: fmt.Sprintf("%.1f", v)} }

// Emit records the event as an instant in the trace (no-op on a nil
// tracer). The reporter renders the same Event to the terminal, so the
// two sinks cannot disagree.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(e.Fields))
	for _, f := range e.Fields {
		k := f.Key
		if k == "" {
			// A key-less field is pure presentation text; the trace still
			// needs a map key for it.
			k = "detail"
		}
		args[k] = f.Val
	}
	t.Instant(e.Msg, e.Cat, args)
}
