// Package obs is the unified observability layer of the lockdown
// pipeline: a zero-dependency typed metrics registry (counters, gauges,
// histograms) with Prometheus text-format exposition, an HTTP self-metrics
// server (plus live pprof), a Chrome trace_event span tracer, and the
// structured run-event type the CLI's reporter renders.
//
// Every other stats surface of the repo — the engine's `_runtime/*` result
// stamps, core.CacheStats, replay.Stats, cluster.Stats,
// faultinject.RelayStats — is re-derived from (or mirrored into) these
// instruments, so the stderr summaries, `-json` output and `/metrics`
// scrape can never drift apart: they read the same atomic counters.
//
// Disabled-mode cost is the design constraint. Instruments are plain
// atomics that exist whether or not a sink is attached: a *Counter Add is
// one atomic add, a Histogram Observe is a bounds scan plus two atomic
// ops, and a Span on a nil Tracer is a time.Now pair. None of them
// allocate — asserted by testing.AllocsPerRun in this package and pinned
// by the benchgate gates on the instrumented hot paths (bridge demux,
// segment write/fault, codec batches). A nil *Registry hands out fully
// functional standalone instruments, so construction sites never branch
// on "is observability on".
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; Registry.Counter returns registered instances. All methods are
// safe for concurrent use and never allocate.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative for Prometheus semantics; the
// counter does not enforce it, snapshot readers do the interpretation).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down. The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into a fixed bucket layout. Buckets are
// cumulative at exposition (Prometheus `le` semantics); internally each
// slot counts its own interval so Observe touches one slot. The zero
// value is not usable — construct with NewHistogram or Registry.Histogram.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last = observations above all bounds
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets is the shared bucket layout for operation latencies in
// seconds: 1ms to ~65s in powers of four. Every duration histogram of the
// pipeline uses it so panels line up.
var DurationBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536}

// SizeBuckets is the shared bucket layout for byte sizes: 1KiB to 1GiB in
// powers of 16.
var SizeBuckets = []float64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30}

// NewHistogram returns a standalone histogram with the given ascending
// upper bounds (a final +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. It never allocates: the bucket scan is over
// a small fixed slice and the sum is a CAS float accumulation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds, plus the
// +Inf bucket (== total count at the time each slot was read).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// metricKind tags a family's exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one exposition time series inside a family: an instrument (or
// a read-callback) plus its optional single label value.
type series struct {
	labelVal string // "" = unlabelled
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	fn       func() float64 // func-backed value (read at scrape)
}

// family is one named metric family.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // label name for Vec families ("" otherwise)

	mu     sync.Mutex
	series []*series
	byVal  map[string]*series
}

// Registry holds named metric families for exposition. A nil *Registry
// is valid everywhere and hands out standalone (unregistered but fully
// functional) instruments, so packages instrument themselves
// unconditionally and the CLI decides whether anything is exported.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// familyFor installs or finds a family, enforcing that a name is never
// reused with a different type or label shape (a programmer error).
func (r *Registry) familyFor(name, help string, kind metricKind, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, label: label, byVal: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != kind || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v(label=%q), was %v(label=%q)",
			name, kind, label, f.kind, f.label))
	}
	return f
}

// single returns the family's unlabelled series, creating it with mk on
// first use.
func (f *family) single(mk func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byVal[""]; ok {
		return s
	}
	s := mk()
	f.byVal[""] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the registered counter of the given name, creating the
// family on first use (get-or-create: two callers share one instrument).
// On a nil registry it returns a standalone counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return new(Counter)
	}
	f := r.familyFor(name, help, kindCounter, "")
	return f.single(func() *series { return &series{counter: new(Counter)} }).counter
}

// Gauge is Counter for an up/down instrument.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	f := r.familyFor(name, help, kindGauge, "")
	return f.single(func() *series { return &series{gauge: new(Gauge)} }).gauge
}

// Histogram returns the registered histogram of the given name with the
// given bucket bounds (ignored if the family already exists). On a nil
// registry it returns a standalone histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	f := r.familyFor(name, help, kindHistogram, "")
	return f.single(func() *series { return &series{hist: NewHistogram(bounds)} }).hist
}

// CounterFunc registers a counter family whose value is read from fn at
// scrape time — the bridge between exposition and stats that already live
// behind their own lock (e.g. the chaos relay's per-stream counts). No-op
// on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, kindCounter, "")
	f.single(func() *series { return &series{fn: fn} })
}

// GaugeFunc is CounterFunc with gauge semantics (resident bytes, pinned
// entries, goroutines).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, kindGauge, "")
	f.single(func() *series { return &series{fn: fn} })
}

// CounterVec is a counter family with one label dimension (e.g. a
// per-stream counter labelled stream="2").
type CounterVec struct {
	f *family // nil on a nil registry
}

// CounterVec returns the labelled counter family of the given name.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	if r == nil {
		return CounterVec{}
	}
	if label == "" {
		panic("obs: CounterVec needs a label name")
	}
	return CounterVec{f: r.familyFor(name, help, kindCounter, label)}
}

// With returns the counter of one label value, creating it on first use.
// The instrument is cached by the caller, so the map lookup is off the
// hot path; on an unregistered vec it returns a standalone counter.
func (v CounterVec) With(value string) *Counter {
	if v.f == nil {
		return new(Counter)
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s, ok := v.f.byVal[value]; ok {
		return s.counter
	}
	s := &series{labelVal: value, counter: new(Counter)}
	v.f.byVal[value] = s
	v.f.series = append(v.f.series, s)
	return s.counter
}

// families returns the registered families sorted by name, for
// exposition.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
