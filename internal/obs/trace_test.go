package obs

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func readFileForTest(path string) ([]byte, error) { return os.ReadFile(path) }

// traceDoc mirrors the trace_event JSON document for the round-trip
// test.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// TestTraceRoundTrip writes a representative span/instant mix —
// sequential root spans, a nested child, concurrent roots from several
// goroutines, instants and an Emit'd event — then parses the whole
// document back and checks the schema and the nesting invariants: every
// event carries a phase and timestamp, child slices lie within their
// parent on the same lane, and complete slices on one lane never
// partially overlap (Perfetto renders exactly this nesting).
func TestTraceRoundTrip(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)

	root := tr.Start("exp:fig1", "experiment")
	child := root.Child("phase", "experiment")
	time.Sleep(time.Millisecond)
	child.End()
	tr.Instant("cache-regen", "cache", map[string]any{"key": "flows/EDU"})
	tr.Emit(Event{Cat: "cluster", Msg: "rebalance", Fields: []Field{Fi("moved", 4)}})
	root.End()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.Start("scan-chunk", "scan")
			time.Sleep(time.Millisecond)
			sp.EndArgs(map[string]any{"lo": 0, "hi": 24})
		}()
	}
	wg.Wait()
	seq := tr.Start("exp:fig2", "experiment")
	seq.End()

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Close() != nil {
		t.Error("second Close not idempotent")
	}
	late := tr.Start("late", "x")
	if late.End() < 0 {
		t.Error("span after Close lost its measurement")
	}

	var doc traceDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace file does not parse: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	byLane := make(map[int][]traceEvent)
	names := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
		switch ev.Ph {
		case "M": // metadata: process_name once, thread_name per lane
		case "i":
			if ev.S != "t" {
				t.Errorf("instant %q scope %q, want t", ev.Name, ev.S)
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("complete event %q without duration", ev.Name)
				continue
			}
			if ev.TS < 0 {
				t.Errorf("complete event %q with negative ts", ev.Name)
			}
			byLane[ev.TID] = append(byLane[ev.TID], ev)
		default:
			t.Errorf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}
	for _, want := range []string{"process_name", "thread_name", "exp:fig1", "phase", "scan-chunk", "cache-regen", "rebalance", "exp:fig2"} {
		if names[want] == 0 {
			t.Errorf("event %q missing from trace", want)
		}
	}
	if names["scan-chunk"] != 8 {
		t.Errorf("scan-chunk events = %d, want 8", names["scan-chunk"])
	}
	if names["late"] != 0 {
		t.Error("event emitted after Close")
	}

	// Nesting: on one lane, any two complete slices either nest or are
	// disjoint — a partial overlap means a child escaped its parent or
	// concurrent spans shared a lane.
	const slack = 1e-3 // float microsecond rounding
	for lane, evs := range byLane {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				aEnd, bEnd := a.TS+*a.Dur, b.TS+*b.Dur
				overlap := a.TS < bEnd && b.TS < aEnd
				nested := (a.TS >= b.TS-slack && aEnd <= bEnd+slack) ||
					(b.TS >= a.TS-slack && bEnd <= aEnd+slack)
				if overlap && !nested {
					t.Errorf("lane %d: %q [%v,%v] and %q [%v,%v] partially overlap",
						lane, a.Name, a.TS, aEnd, b.Name, b.TS, bEnd)
				}
			}
		}
	}
	// The child span must lie within its parent.
	var parent, kid *traceEvent
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		switch ev.Name {
		case "exp:fig1":
			parent = ev
		case "phase":
			kid = ev
		}
	}
	if parent == nil || kid == nil {
		t.Fatal("parent or child span missing")
	}
	if kid.TID != parent.TID {
		t.Errorf("child on lane %d, parent on %d", kid.TID, parent.TID)
	}
	if kid.TS < parent.TS-1e-3 || kid.TS+*kid.Dur > parent.TS+*parent.Dur+1e-3 {
		t.Errorf("child [%v,%v] escapes parent [%v,%v]",
			kid.TS, kid.TS+*kid.Dur, parent.TS, parent.TS+*parent.Dur)
	}
}

// TestLaneReuse pins the freelist: sequential root spans share lane 1,
// and a released lane is handed to the next root.
func TestLaneReuse(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	a := tr.Start("a", "t")
	if a.tid != 1 {
		t.Errorf("first root on lane %d, want 1", a.tid)
	}
	b := tr.Start("b", "t")
	if b.tid != 2 {
		t.Errorf("concurrent root on lane %d, want 2", b.tid)
	}
	a.End()
	c := tr.Start("c", "t")
	if c.tid != 1 {
		t.Errorf("root after release on lane %d, want reused 1", c.tid)
	}
	c.End()
	b.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCreateWritesFile exercises the file-backed constructor end to end.
func TestCreateWritesFile(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := tr.Start("x", "y")
	sp.End()
	if tr.Events() < 2 { // process_name + thread_name + span
		t.Errorf("events = %d", tr.Events())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := readFileForTest(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("file does not parse: %v", err)
	}
}
