package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one # HELP
// and # TYPE line each, series sorted by label value, histograms expanded
// into cumulative _bucket{le=...} series plus _sum and _count. The output
// is deterministic for a given registry state, which the golden test
// pins. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		sort.Slice(series, func(i, j int) bool { return series[i].labelVal < series[j].labelVal })

		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		for _, s := range series {
			switch {
			case s.hist != nil:
				writeHistogram(bw, f, s)
			case s.fn != nil:
				writeSample(bw, f.name, f.label, s.labelVal, "", formatFloat(s.fn()))
			case s.counter != nil:
				writeSample(bw, f.name, f.label, s.labelVal, "", strconv.FormatInt(s.counter.Value(), 10))
			case s.gauge != nil:
				writeSample(bw, f.name, f.label, s.labelVal, "", strconv.FormatInt(s.gauge.Value(), 10))
			}
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into its cumulative bucket,
// sum and count samples.
func writeHistogram(bw *bufio.Writer, f *family, s *series) {
	cum := s.hist.snapshot()
	for i, bound := range s.hist.bounds {
		writeSample(bw, f.name+"_bucket", f.label, s.labelVal,
			`le="`+formatFloat(bound)+`"`, strconv.FormatInt(cum[i], 10))
	}
	writeSample(bw, f.name+"_bucket", f.label, s.labelVal, `le="+Inf"`,
		strconv.FormatInt(cum[len(cum)-1], 10))
	writeSample(bw, f.name+"_sum", f.label, s.labelVal, "", formatFloat(s.hist.Sum()))
	writeSample(bw, f.name+"_count", f.label, s.labelVal, "", strconv.FormatInt(s.hist.Count(), 10))
}

// writeSample writes one `name{labels} value` line. label/labelVal is the
// family's single dynamic label (absent when the family is unlabelled);
// extra is a pre-rendered additional pair (the histogram `le`).
func writeSample(bw *bufio.Writer, name, label, labelVal, extra, value string) {
	bw.WriteString(name)
	if label != "" || extra != "" {
		bw.WriteByte('{')
		if label != "" {
			bw.WriteString(label)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labelVal))
			bw.WriteByte('"')
			if extra != "" {
				bw.WriteByte(',')
			}
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
