package appclass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lockdown/internal/flowrec"
)

// interestingASNs biases random flows toward values that exercise the
// program's tables: real filter ASNs, neighbours, zero, and values past
// the table bound.
var interestingASNs = []uint32{
	0, 1, 680, 766, 2906, 8075, 13335, 19679, 20940, 20965, 24940,
	30103, 32934, 46489, 64600, 203561, 394406, 394699, 394700, 400000, 4000000000,
}

var interestingPorts = []uint16{
	0, 22, 25, 53, 80, 110, 143, 443, 465, 587, 993, 995, 1194, 1494,
	3074, 3389, 3478, 3480, 3659, 4070, 5222, 5223, 5228, 5938, 8000,
	8080, 8200, 8393, 8801, 17500, 27015, 30000, 50000, 55555, 65535,
}

var interestingProtos = []flowrec.Proto{
	flowrec.ProtoTCP, flowrec.ProtoUDP, flowrec.ProtoICMP,
	flowrec.ProtoGRE, flowrec.ProtoESP, 99,
}

func randomBatch(rng *rand.Rand, n int) *flowrec.Batch {
	b := flowrec.NewBatch(n)
	for i := 0; i < n; i++ {
		b.SrcAS = append(b.SrcAS, interestingASNs[rng.Intn(len(interestingASNs))])
		b.DstAS = append(b.DstAS, interestingASNs[rng.Intn(len(interestingASNs))])
		b.SrcPort = append(b.SrcPort, interestingPorts[rng.Intn(len(interestingPorts))])
		b.DstPort = append(b.DstPort, interestingPorts[rng.Intn(len(interestingPorts))])
		b.Proto = append(b.Proto, interestingProtos[rng.Intn(len(interestingProtos))])
		b.Bytes = append(b.Bytes, uint64(rng.Intn(1<<20)))
		b.Dir = append(b.Dir, flowrec.Direction(rng.Intn(5))) // incl. out-of-range 3,4
	}
	return b
}

// TestProgramMatchesReference: the compiled bitmask program must agree
// with the nested first-match loop on every (srcAS, dstAS, port) input.
func TestProgramMatchesReference(t *testing.T) {
	c := NewDefault(nil)
	f := func(srcAS, dstAS uint32, port uint16, proto uint8, pickSrc, pickDst, pickPort bool) bool {
		// Half the samples snap to interesting values so filter hits are
		// common; the raw halves cover the miss space.
		if pickSrc {
			srcAS = interestingASNs[int(srcAS)%len(interestingASNs)]
		}
		if pickDst {
			dstAS = interestingASNs[int(dstAS)%len(interestingASNs)]
		}
		if pickPort {
			port = interestingPorts[int(port)%len(interestingPorts)]
		}
		sp := flowrec.PortProto{Proto: flowrec.Proto(proto), Port: port}
		return c.classifyIdx(srcAS, dstAS, sp) == c.classifyIdxRef(srcAS, dstAS, sp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestProgramExhaustivePorts sweeps every TCP/UDP port against each
// interesting AS pairing — the full port-table dimension.
func TestProgramExhaustivePorts(t *testing.T) {
	c := NewDefault(nil)
	asPairs := [][2]uint32{
		{0, 0}, {30103, 0}, {0, 30103}, {19679, 394699}, {20940, 24940}, {64600, 766},
	}
	for _, proto := range []flowrec.Proto{flowrec.ProtoTCP, flowrec.ProtoUDP} {
		for port := 0; port < 65536; port++ {
			sp := flowrec.PortProto{Proto: proto, Port: uint16(port)}
			for _, as := range asPairs {
				if got, want := c.classifyIdx(as[0], as[1], sp), c.classifyIdxRef(as[0], as[1], sp); got != want {
					t.Fatalf("proto %d port %d AS %v: program %d, reference %d", proto, port, as, got, want)
				}
			}
		}
	}
}

// TestVolumeKernelsMatchRowPath: the tiled kernel output of both volume
// variants must equal a per-row reference re-implementation (including
// key-presence semantics for zero-byte rows), across tile boundaries.
func TestVolumeKernelsMatchRowPath(t *testing.T) {
	c := NewDefault(nil)
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 4095, 4096, 4097, 9000} {
		b := randomBatch(rng, n)
		if n > 2 {
			b.Bytes[1] = 0 // zero-volume row must still create its class key
		}

		wantU := make(map[Class]uint64)
		wantF := make(map[Class]float64)
		for i := 0; i < n; i++ {
			k := c.classifyIdxRef(b.SrcAS[i], b.DstAS[i], b.ServerPortAt(i))
			cls := Unclassified
			if k < len(c.order) {
				cls = c.order[k]
			}
			wantU[cls] += b.Bytes[i]
			wantF[cls] += float64(b.Bytes[i])
		}

		gotU := make(map[Class]uint64)
		c.VolumeByClassIntoUint64(gotU, b)
		gotF := make(map[Class]float64)
		c.VolumeByClassInto(gotF, b)

		if len(gotU) != len(wantU) || len(gotF) != len(wantF) {
			t.Fatalf("n=%d: key sets differ: got %d/%d keys, want %d/%d", n, len(gotU), len(gotF), len(wantU), len(wantF))
		}
		for cls, v := range wantU {
			if gotU[cls] != v {
				t.Fatalf("n=%d class %q: uint64 %d, want %d", n, cls, gotU[cls], v)
			}
		}
		for cls, v := range wantF {
			if gotF[cls] != v {
				t.Fatalf("n=%d class %q: float %v, want %v", n, cls, gotF[cls], v)
			}
		}
	}
}

// TestEDUCountKernelMatchesRowPath: the paired-scatter EDU counts must
// equal the per-row record path, including nested key presence and
// out-of-range direction bytes.
func TestEDUCountKernelMatchesRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 4096, 4097, 8200} {
		b := randomBatch(rng, n)
		want := make(map[EDUClass]map[flowrec.Direction]int)
		for i := 0; i < n; i++ {
			cls := ClassifyEDUAt(b, i)
			if want[cls] == nil {
				want[cls] = make(map[flowrec.Direction]int)
			}
			want[cls][b.Dir[i]]++
		}
		got := CountEDUByClassDirBatch(b)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d classes, want %d", n, len(got), len(want))
		}
		for cls, dirs := range want {
			if len(got[cls]) != len(dirs) {
				t.Fatalf("n=%d class %q: %d dirs, want %d", n, cls, len(got[cls]), len(dirs))
			}
			for d, cnt := range dirs {
				if got[cls][d] != cnt {
					t.Fatalf("n=%d class %q dir %d: %d, want %d", n, cls, d, got[cls][d], cnt)
				}
			}
		}
	}
}

// BenchmarkClassVolumeKernel / Ref are the in-package A/B pair: the
// compiled-program tiled kernel against the PR 9 nested-filter row loop,
// over the same batch. benchgate gates the kernel at 0 allocs/op.
func benchVolumeBatch() *flowrec.Batch {
	return randomBatch(rand.New(rand.NewSource(42)), 16384)
}

func BenchmarkClassVolumeKernel(b *testing.B) {
	c := NewDefault(nil)
	batch := benchVolumeBatch()
	sums := make(map[Class]uint64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.VolumeByClassIntoUint64(sums, batch)
	}
}

func BenchmarkClassVolumeRef(b *testing.B) {
	c := NewDefault(nil)
	batch := benchVolumeBatch()
	sums := make(map[Class]uint64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := len(c.order)
		var acc [maxClasses + 1]uint64
		var touched [maxClasses + 1]bool
		for j := 0; j < batch.Len(); j++ {
			k := c.classifyIdxRef(batch.SrcAS[j], batch.DstAS[j], batch.ServerPortAt(j))
			acc[k] += batch.Bytes[j]
			touched[k] = true
		}
		for k := 0; k < n; k++ {
			if touched[k] {
				sums[c.order[k]] += acc[k]
			}
		}
		if touched[n] {
			sums[Unclassified] += acc[n]
		}
	}
}

func BenchmarkEDUCountKernel(b *testing.B) {
	batch := benchVolumeBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountEDUByClassDirBatch(batch)
	}
}
