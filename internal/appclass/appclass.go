// Package appclass implements the application-class traffic classification
// of Section 5 (Table 1) of "The Lockdown Effect" (IMC 2020) and the EDU
// traffic classes of its Appendix B.
//
// Classification works exactly as in the paper: each class is defined by a
// set of filters, where a filter matches on the source/destination AS, on
// the transport port, or on a combination of both. A flow record is
// attributed to the first class whose filters match ("hiding" web-based
// applications such as conferencing inside TCP/443 are pulled out of the
// generic web class by their AS).
package appclass

import (
	"sort"

	"lockdown/internal/asdb"
	"lockdown/internal/flowrec"
	"lockdown/internal/simd"
)

// Class is one of the paper's application classes (Table 1).
type Class string

// The nine application classes of Table 1, plus Unclassified for traffic
// no filter matches.
const (
	WebConf       Class = "Web conf"
	VoD           Class = "VoD"
	Gaming        Class = "gaming"
	SocialMedia   Class = "social media"
	Messaging     Class = "messaging"
	Email         Class = "email"
	Educational   Class = "educational"
	Collaborative Class = "coll. working"
	CDN           Class = "CDN"
	Unclassified  Class = "unclassified"
)

// AllClasses lists the nine classes in the row order of Figure 9's
// heatmaps.
func AllClasses() []Class {
	return []Class{CDN, Collaborative, Educational, Email, Messaging, SocialMedia, Gaming, VoD, WebConf}
}

// maxClasses bounds the evaluation-order length so the batch scan loops
// can accumulate into fixed-size stack arrays (9 classes today; headroom
// for a few more). NewDefault panics if the order outgrows it.
const maxClasses = 15

// Filter is one matching rule: a flow matches if it involves one of the
// filter's ASes (when given) and uses one of the filter's ports (when
// given). A filter with both criteria requires both.
type Filter struct {
	// Name documents the provider or protocol the filter captures.
	Name string
	// ASNs match either endpoint's AS (content providers appear as
	// source at the ISP and as either side at the IXPs).
	ASNs []uint32
	// Ports match the flow's server-side port.
	Ports []flowrec.PortProto
}

// matches reports whether a flow with the given AS endpoints and
// service-side port satisfies the filter. Classification depends on
// nothing else, which is what lets the batch path scan three columns
// instead of materialising records.
func (f Filter) matches(srcAS, dstAS uint32, sp flowrec.PortProto) bool {
	if len(f.ASNs) > 0 {
		found := false
		for _, asn := range f.ASNs {
			if srcAS == asn || dstAS == asn {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(f.Ports) > 0 {
		found := false
		for _, p := range f.Ports {
			if p == sp {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return len(f.ASNs) > 0 || len(f.Ports) > 0
}

// Classifier attributes flow records to application classes.
type Classifier struct {
	order   []Class
	filters map[Class][]Filter
	// ordFilters holds the filter lists aligned with order, precomputed
	// so the batch scan loops index a slice instead of hashing a map key
	// per row per class.
	ordFilters [][]Filter
	// prog is the filter inventory compiled to the bitmask evaluator in
	// kernels.go; classifyIdx and the batch scans run on it, with the
	// nested-loop classifyIdxRef kept as the semantic reference.
	prog *program
}

func tcp(p uint16) flowrec.PortProto { return flowrec.PortProto{Proto: flowrec.ProtoTCP, Port: p} }
func udp(p uint16) flowrec.PortProto { return flowrec.PortProto{Proto: flowrec.ProtoUDP, Port: p} }

// NewDefault builds the classifier with the filter inventory of Table 1,
// resolving provider ASes against the given registry (pass nil for the
// built-in registry).
func NewDefault(reg *asdb.Registry) *Classifier {
	if reg == nil {
		reg = asdb.Default()
	}
	asnsOf := func(cat asdb.Category) []uint32 {
		var out []uint32
		for _, a := range reg.OfCategory(cat) {
			out = append(out, a.ASN)
		}
		return out
	}

	gamingPorts := []flowrec.PortProto{
		udp(3074), tcp(3074), udp(3659), udp(27015), tcp(27015), udp(30000), udp(8393), udp(5222), tcp(5222),
	}
	emailPorts := []flowrec.PortProto{tcp(25), tcp(110), tcp(143), tcp(465), tcp(587), tcp(993), tcp(995)}
	confPorts := []flowrec.PortProto{udp(3480), udp(8801), udp(3478), udp(50000)}
	collabPorts := []flowrec.PortProto{tcp(443), tcp(80)}
	messagingPorts := []flowrec.PortProto{tcp(443), tcp(5222), tcp(5223)}

	c := &Classifier{
		// Specific, provider-bound classes are evaluated before broad
		// port-only classes so that e.g. conferencing inside TCP/443 is
		// not swallowed by CDN or web filters.
		order:   []Class{WebConf, Collaborative, Messaging, Gaming, VoD, SocialMedia, Educational, Email, CDN},
		filters: make(map[Class][]Filter),
	}

	c.filters[WebConf] = []Filter{
		{Name: "Zoom", ASNs: []uint32{30103}, Ports: []flowrec.PortProto{udp(8801), tcp(443), udp(3478)}},
		{Name: "Teams/Skype STUN", ASNs: []uint32{8075}, Ports: []flowrec.PortProto{udp(3480), udp(3478)}},
		{Name: "Webex", ASNs: []uint32{13445}, Ports: []flowrec.PortProto{tcp(443), udp(3478)}},
		{Name: "RingCentral", ASNs: []uint32{46652}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "Conferencing media ports", Ports: confPorts},
		{Name: "Zoom connector", Ports: []flowrec.PortProto{udp(8801)}},
		{Name: "Teams STUN", Ports: []flowrec.PortProto{udp(3480)}},
	}
	c.filters[VoD] = []Filter{
		{Name: "Netflix", ASNs: []uint32{2906, 40027}},
		{Name: "Twitch", ASNs: []uint32{46489}},
		{Name: "Disney streaming", ASNs: []uint32{394406}},
		{Name: "Regional TV streaming", ASNs: []uint32{203561}},
		{Name: "TV streaming port", ASNs: []uint32{203561}, Ports: []flowrec.PortProto{tcp(8200)}},
	}
	c.filters[Gaming] = []Filter{
		{Name: "Valve/Steam", ASNs: []uint32{32590}, Ports: gamingPorts},
		{Name: "Blizzard", ASNs: []uint32{57976}, Ports: gamingPorts},
		{Name: "Riot Games", ASNs: []uint32{6507}, Ports: gamingPorts},
		{Name: "Nintendo", ASNs: []uint32{11282}, Ports: gamingPorts},
		{Name: "Sony PSN", ASNs: []uint32{33353}, Ports: gamingPorts},
		{Name: "Gaming providers any port", ASNs: asnsOf(asdb.CatGaming)},
		{Name: "Console/game ports", Ports: gamingPorts[:6]},
		{Name: "Cloud gaming", Ports: []flowrec.PortProto{udp(30000)}},
	}
	c.filters[SocialMedia] = []Filter{
		{Name: "Facebook", ASNs: []uint32{32934}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "Twitter", ASNs: []uint32{13414}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "Snap", ASNs: []uint32{54888}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "TikTok / VK", ASNs: []uint32{138699, 47764}, Ports: []flowrec.PortProto{tcp(443)}},
	}
	c.filters[Messaging] = []Filter{
		{Name: "Telegram", ASNs: []uint32{62041}, Ports: messagingPorts},
		{Name: "Viber", ASNs: []uint32{59930}, Ports: messagingPorts},
		{Name: "Other messengers", ASNs: []uint32{21321}, Ports: messagingPorts},
	}
	c.filters[Email] = []Filter{
		{Name: "Mail protocols", Ports: emailPorts},
	}
	c.filters[Educational] = []Filter{
		{Name: "GEANT", ASNs: []uint32{20965}},
		{Name: "DFN", ASNs: []uint32{680}},
		{Name: "RedIRIS", ASNs: []uint32{766}},
		{Name: "Internet2", ASNs: []uint32{11537}},
		{Name: "Metropolitan EDU", ASNs: []uint32{64600}},
		{Name: "Other NRENs", ASNs: asnsOf(asdb.CatEducational)},
		{Name: "Campus web", ASNs: []uint32{64600}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "Campus alt web", ASNs: []uint32{766}, Ports: []flowrec.PortProto{tcp(80)}},
		{Name: "Campus QUIC", ASNs: []uint32{64600}, Ports: []flowrec.PortProto{udp(443)}},
	}
	c.filters[Collaborative] = []Filter{
		{Name: "Dropbox", ASNs: []uint32{19679}, Ports: collabPorts},
		{Name: "Slack", ASNs: []uint32{394699}, Ports: collabPorts},
		{Name: "Automattic", ASNs: []uint32{2635}, Ports: collabPorts},
		{Name: "Dropbox LAN sync", ASNs: []uint32{19679}, Ports: []flowrec.PortProto{tcp(17500)}},
		{Name: "Collaboration suites", ASNs: []uint32{19679, 394699}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "Whiteboarding", ASNs: []uint32{394699}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "File sync", ASNs: []uint32{19679}, Ports: []flowrec.PortProto{tcp(443)}},
		{Name: "Wiki hosting", ASNs: []uint32{2635}, Ports: []flowrec.PortProto{tcp(443)}},
	}
	c.filters[CDN] = []Filter{
		{Name: "Akamai", ASNs: []uint32{20940}},
		{Name: "Cloudflare", ASNs: []uint32{13335}},
		{Name: "Fastly", ASNs: []uint32{54113}},
		{Name: "Limelight", ASNs: []uint32{22822}},
		{Name: "Verizon Digital Media", ASNs: []uint32{15133}},
		{Name: "CDN77", ASNs: []uint32{60068}},
		{Name: "Edgio", ASNs: []uint32{32787}},
		{Name: "Other CDNs", ASNs: asnsOf(asdb.CatCDN)},
	}
	if len(c.order) > maxClasses {
		panic("appclass: evaluation order exceeds maxClasses; grow the accumulator bound")
	}
	c.ordFilters = make([][]Filter, len(c.order))
	for k, cls := range c.order {
		c.ordFilters[k] = c.filters[cls]
	}
	c.prog = compileProgram(c.order, c.ordFilters)
	return c
}

// classifyIdx attributes one flow, given the three values classification
// depends on, and returns the matched class's index in evaluation order —
// len(order) for unclassified. It runs on the compiled bitmask program;
// classifyIdxRef below is the nested first-match loop it replaced, kept
// as the semantic reference for the equivalence tests and the in-package
// A/B benchmark.
func (c *Classifier) classifyIdx(srcAS, dstAS uint32, sp flowrec.PortProto) int {
	return int(c.prog.laneOf(srcAS, dstAS, sp))
}

// classifyIdxRef is the pre-kernel classifier: scan the filters in
// evaluation order, return the first match.
func (c *Classifier) classifyIdxRef(srcAS, dstAS uint32, sp flowrec.PortProto) int {
	for k, fs := range c.ordFilters {
		for _, f := range fs {
			if f.matches(srcAS, dstAS, sp) {
				return k
			}
		}
	}
	return len(c.ordFilters)
}

// classify is classifyIdx mapped back to the Class name.
func (c *Classifier) classify(srcAS, dstAS uint32, sp flowrec.PortProto) Class {
	if k := c.classifyIdx(srcAS, dstAS, sp); k < len(c.order) {
		return c.order[k]
	}
	return Unclassified
}

// Classify returns the application class of the record, or Unclassified.
func (c *Classifier) Classify(r flowrec.Record) Class {
	return c.classify(r.SrcAS, r.DstAS, r.ServerPort())
}

// ClassifyAt returns the application class of batch row i, reading only
// the AS and port columns.
func (c *Classifier) ClassifyAt(b *flowrec.Batch, i int) Class {
	return c.classify(b.SrcAS[i], b.DstAS[i], b.ServerPortAt(i))
}

// Filters returns the filter list of one class (the rows behind Table 1).
func (c *Classifier) Filters(cls Class) []Filter { return c.filters[cls] }

// InventoryRow summarises one class's filters as reported in Table 1.
type InventoryRow struct {
	Class         Class
	Filters       int
	DistinctASNs  int
	DistinctPorts int
}

// Inventory reproduces Table 1: per class, the number of filters, distinct
// ASNs and distinct transport ports used.
func (c *Classifier) Inventory() []InventoryRow {
	rows := make([]InventoryRow, 0, len(c.order))
	for _, cls := range []Class{WebConf, VoD, Gaming, SocialMedia, Messaging, Email, Educational, Collaborative, CDN} {
		asns := make(map[uint32]bool)
		ports := make(map[flowrec.PortProto]bool)
		for _, f := range c.filters[cls] {
			for _, a := range f.ASNs {
				asns[a] = true
			}
			for _, p := range f.Ports {
				ports[p] = true
			}
		}
		rows = append(rows, InventoryRow{
			Class:         cls,
			Filters:       len(c.filters[cls]),
			DistinctASNs:  len(asns),
			DistinctPorts: len(ports),
		})
	}
	return rows
}

// VolumeByClass aggregates the byte volume of the records per class.
func (c *Classifier) VolumeByClass(recs []flowrec.Record) map[Class]float64 {
	out := make(map[Class]float64)
	for _, r := range recs {
		out[c.Classify(r)] += float64(r.Bytes)
	}
	return out
}

// VolumeByClassBatch is VolumeByClass over a columnar batch: it scans the
// AS, port and byte columns directly, accumulating in row order so the
// sums are bit-identical to the record path.
func (c *Classifier) VolumeByClassBatch(b *flowrec.Batch) map[Class]float64 {
	out := make(map[Class]float64)
	c.VolumeByClassInto(out, b)
	return out
}

// VolumeByClassInto accumulates the batch's per-class byte volume into
// sums, letting multi-batch scans (a week of component-hours) share one
// result map.
//
// The hot loop accumulates into a dense array indexed by class id instead
// of writing through the map per row: the map hash leaves the loop, and
// the per-class accumulator stays in a register. Per class the additions
// still happen in row order starting from zero, and byte volumes are
// integers far below 2^53, so every intermediate sum is exact and the
// merged totals are bit-identical to the historic per-row map writes.
// The touched mask preserves the map-key semantics exactly: a class gets
// a key if and only if a row classified into it, even at volume zero.
func (c *Classifier) VolumeByClassInto(sums map[Class]float64, b *flowrec.Batch) {
	n := len(c.order)
	var acc [simd.Lanes]float64
	var cnt [simd.Lanes]uint64
	c.accumulateLanes(b, nil, &acc, &cnt)
	for k := 0; k < n; k++ {
		if cnt[k] > 0 {
			sums[c.order[k]] += acc[k]
		}
	}
	if cnt[n] > 0 {
		sums[Unclassified] += acc[n]
	}
}

// VolumeByClassIntoUint64 is VolumeByClassInto with exact integer
// accumulation: byte counts sum as uint64, so the totals carry no rounding
// at any magnitude and partial sums merge associatively — the property the
// sharded scans need to produce bit-identical aggregates under every chunk
// grouping (float accumulation loses it once a sum crosses 2^53, which a
// week of a busy vantage point's volume does). The touched mask keeps the
// same key semantics as the float variant.
func (c *Classifier) VolumeByClassIntoUint64(sums map[Class]uint64, b *flowrec.Batch) {
	n := len(c.order)
	var acc [simd.Lanes]uint64
	var cnt [simd.Lanes]uint64
	c.accumulateLanes(b, &acc, nil, &cnt)
	for k := 0; k < n; k++ {
		if cnt[k] > 0 {
			sums[c.order[k]] += acc[k]
		}
	}
	if cnt[n] > 0 {
		sums[Unclassified] += acc[n]
	}
}

// Classes returns the classes in evaluation order.
func (c *Classifier) Classes() []Class {
	out := append([]Class(nil), c.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
