package appclass

import (
	"math/bits"

	"lockdown/internal/flowrec"
	"lockdown/internal/simd"
)

// program is the Table-1 filter inventory compiled to a branch-free
// bitmask evaluator. Every live filter (one with at least one criterion)
// owns one bit, assigned in evaluation order — class-major, filter order
// within each class preserved. A row's classification is then:
//
//	eligible = (portAlways | portBits[server port])
//	         & (asnAlways  | asnBits[srcAS] | asnBits[dstAS])
//	lane     = classOf[TrailingZeros64(eligible | sentinel)]
//
// where portBits has bit f set iff filter f lists that (proto, port)
// pair, asnBits has bit f set iff filter f lists that ASN, and the
// always-masks carry the filters that omit that criterion entirely. The
// first matching filter in evaluation order is the lowest set bit, so
// TrailingZeros64 reproduces the nested first-match loop exactly; the
// sentinel bit (numFilters) maps to the unclassified lane and fires when
// nothing matched. Three table loads, two ANDs and a TZCNT replace ~43
// filters × (ASN scan + port scan) per row.
//
// Both-empty filters match nothing (the matches method's final clause)
// and are simply not assigned a bit. A filter with both criteria needs
// its bit present on both sides of the AND — requiring both, as matches
// does.
type program struct {
	numFilters int
	// classOf maps a filter's bit index to its class lane; entry
	// numFilters (the sentinel) holds the unclassified lane. Sized 64 and
	// indexed &63 so lookups are provably in bounds.
	classOf    [64]uint8
	portAlways uint64
	asnAlways  uint64
	// portTabs rows are copy-on-write over a shared all-zero default,
	// like flowrec.PortLanes: only TCP and UDP allocate real rows.
	portTabs [256]*[65536]uint64
	// asnTab is sized to the largest filtered ASN + 1 (~395k entries,
	// ~3 MiB once per classifier); lookups above the bound contribute no
	// bits, the same as an absent map key.
	asnTab []uint64
}

func compileProgram(order []Class, ordFilters [][]Filter) *program {
	p := &program{}
	portDef := new([65536]uint64)
	for i := range p.portTabs {
		p.portTabs[i] = portDef
	}

	maxASN := uint32(0)
	for _, fs := range ordFilters {
		for _, f := range fs {
			for _, a := range f.ASNs {
				maxASN = max(maxASN, a)
			}
		}
	}
	p.asnTab = make([]uint64, int(maxASN)+1)

	f := 0
	for k, fs := range ordFilters {
		for _, flt := range fs {
			if len(flt.ASNs) == 0 && len(flt.Ports) == 0 {
				continue // matches nothing; no bit
			}
			if f >= 63 {
				panic("appclass: filter inventory exceeds 63 live filters; widen the program to multiple words")
			}
			bit := uint64(1) << f
			p.classOf[f] = uint8(k)
			if len(flt.Ports) == 0 {
				p.portAlways |= bit
			} else {
				for _, pp := range flt.Ports {
					row := p.portTabs[pp.Proto]
					if row == portDef {
						row = new([65536]uint64)
						p.portTabs[pp.Proto] = row
					}
					row[pp.Port] |= bit
				}
			}
			if len(flt.ASNs) == 0 {
				p.asnAlways |= bit
			} else {
				for _, a := range flt.ASNs {
					p.asnTab[a] |= bit
				}
			}
			f++
		}
	}
	p.numFilters = f
	p.classOf[f] = uint8(len(order))
	return p
}

// asnBits returns the filter bits of one AS endpoint without branching:
// the index is clamped into the table and the loaded word masked to zero
// when the AS was out of range.
func (p *program) asnBits(as uint32) uint64 {
	n := uint32(len(p.asnTab))
	in := as < n
	idx := min(as, n-1)
	var m uint64
	if in {
		m = ^uint64(0)
	}
	return p.asnTab[idx] & m
}

// laneOf classifies one flow from the three values classification
// depends on, returning the class lane (index in evaluation order;
// len(order) for unclassified).
func (p *program) laneOf(srcAS, dstAS uint32, sp flowrec.PortProto) uint8 {
	portBits := p.portAlways | p.portTabs[sp.Proto][sp.Port]
	asnBits := p.asnAlways | p.asnBits(srcAS) | p.asnBits(dstAS)
	eligible := portBits&asnBits | uint64(1)<<p.numFilters
	return p.classOf[bits.TrailingZeros64(eligible)&63]
}

// classLanes fills lanes[0:hi-lo] with the class lane of each row in
// [lo, hi). The loop body is straight-line: the inlined ServerPortAt is
// arithmetic plus a mask load, and laneOf is table loads and bit ops.
func (c *Classifier) classLanes(b *flowrec.Batch, lo, hi int, lanes []uint8) {
	p := c.prog
	srcAS := b.SrcAS[lo:hi]
	dstAS := b.DstAS[lo:hi]
	dstAS = dstAS[:len(srcAS)]
	lanes = lanes[:len(srcAS)]
	for i := range srcAS {
		sp := b.ServerPortAt(lo + i)
		lanes[i] = p.laneOf(srcAS[i], dstAS[i], sp)
	}
}

// accumulateLanes runs the tiled classify+scatter pass shared by the two
// VolumeByClassInto variants: per tile of rows, one classification pass
// fills the lane scratch, then the scatter kernels fold bytes and row
// counts into dense per-lane accumulators. Counts — not sums — carry the
// map-key semantics: a lane was touched iff a row classified into it,
// even at volume zero.
func (c *Classifier) accumulateLanes(b *flowrec.Batch, sum *[simd.Lanes]uint64, fsum *[simd.Lanes]float64, cnt *[simd.Lanes]uint64) {
	var lanes [simd.Tile]uint8
	n := b.Len()
	for lo := 0; lo < n; lo += simd.Tile {
		hi := min(lo+simd.Tile, n)
		c.classLanes(b, lo, hi, lanes[:hi-lo])
		if sum != nil {
			simd.ScatterAddUint64(sum, lanes[:hi-lo], b.Bytes[lo:hi])
		}
		if fsum != nil {
			simd.ScatterAddFloat64FromUint64(fsum, lanes[:hi-lo], b.Bytes[lo:hi])
		}
		simd.ScatterCount(cnt, lanes[:hi-lo])
	}
}
