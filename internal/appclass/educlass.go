package appclass

import (
	"sync"

	"lockdown/internal/flowrec"
	"lockdown/internal/simd"
)

// EDUClass is one of the educational-network traffic classes of Appendix B.
// Unlike the Table 1 classes they are defined almost exclusively by
// well-known ports (plus one AS for Spotify), because the academic
// network's analysis is connection-oriented.
type EDUClass string

// The Appendix B traffic classes.
const (
	EDUWeb           EDUClass = "Web"
	EDUQUIC          EDUClass = "QUIC"
	EDUPush          EDUClass = "Push notifications"
	EDUEmail         EDUClass = "Email"
	EDUVPN           EDUClass = "VPN"
	EDUSSH           EDUClass = "SSH"
	EDURemoteDesktop EDUClass = "Remote desktop"
	EDUSpotify       EDUClass = "Spotify"
	EDUOther         EDUClass = "Other"
)

// AllEDUClasses lists the Appendix B classes in presentation order.
func AllEDUClasses() []EDUClass {
	return []EDUClass{EDUWeb, EDUQUIC, EDUPush, EDUEmail, EDUVPN, EDUSSH, EDURemoteDesktop, EDUSpotify}
}

// spotifyASN is the AS listed for Spotify in Appendix B; the synthetic
// registry maps it to a European hosting AS (see package synth).
const spotifyASN = 24940

// eduPortClasses maps server ports to their Appendix B class. QUIC is kept
// separate from Web even though Appendix B lists UDP/443 under both; the
// connection analysis of Section 7 tracks QUIC on its own (Figure 12).
var eduPortClasses = map[flowrec.PortProto]EDUClass{
	{Proto: flowrec.ProtoTCP, Port: 80}:   EDUWeb,
	{Proto: flowrec.ProtoTCP, Port: 443}:  EDUWeb,
	{Proto: flowrec.ProtoTCP, Port: 8000}: EDUWeb,
	{Proto: flowrec.ProtoTCP, Port: 8080}: EDUWeb,
	{Proto: flowrec.ProtoUDP, Port: 443}:  EDUQUIC,

	{Proto: flowrec.ProtoTCP, Port: 5223}: EDUPush,
	{Proto: flowrec.ProtoTCP, Port: 5228}: EDUPush,

	{Proto: flowrec.ProtoTCP, Port: 25}:  EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 110}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 143}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 465}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 587}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 993}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 995}: EDUEmail,

	{Proto: flowrec.ProtoUDP, Port: 500}:  EDUVPN,
	{Proto: flowrec.ProtoUDP, Port: 4500}: EDUVPN,
	{Proto: flowrec.ProtoTCP, Port: 1194}: EDUVPN,
	{Proto: flowrec.ProtoUDP, Port: 1194}: EDUVPN,
	{Proto: flowrec.ProtoGRE}:             EDUVPN,
	{Proto: flowrec.ProtoESP}:             EDUVPN,

	{Proto: flowrec.ProtoTCP, Port: 22}: EDUSSH,

	{Proto: flowrec.ProtoTCP, Port: 1494}: EDURemoteDesktop,
	{Proto: flowrec.ProtoUDP, Port: 1494}: EDURemoteDesktop,
	{Proto: flowrec.ProtoTCP, Port: 3389}: EDURemoteDesktop,
	{Proto: flowrec.ProtoTCP, Port: 5938}: EDURemoteDesktop,
	{Proto: flowrec.ProtoUDP, Port: 5938}: EDURemoteDesktop,

	{Proto: flowrec.ProtoTCP, Port: 4070}: EDUSpotify,
}

// classifyEDU attributes one educational-network flow from the values the
// Appendix B rules depend on: the service-side port and the AS endpoints.
func classifyEDU(srcAS, dstAS uint32, sp flowrec.PortProto) EDUClass {
	if cls, ok := eduPortClasses[sp]; ok {
		return cls
	}
	if srcAS == spotifyASN || dstAS == spotifyASN {
		return EDUSpotify
	}
	return EDUOther
}

// ClassifyEDU attributes a flow record of the educational network to its
// Appendix B class. Port matching is attempted first; the Spotify AS rule
// applies afterwards; everything else is EDUOther (the paper reports that
// 39% of flows cannot be labelled).
func ClassifyEDU(r flowrec.Record) EDUClass {
	return classifyEDU(r.SrcAS, r.DstAS, r.ServerPort())
}

// ClassifyEDUAt attributes batch row i, reading only the AS and port
// columns.
func ClassifyEDUAt(b *flowrec.Batch, i int) EDUClass {
	return classifyEDU(b.SrcAS[i], b.DstAS[i], b.ServerPortAt(i))
}

// CountEDUByClassDir counts connections (records) per class and direction.
func CountEDUByClassDir(recs []flowrec.Record) map[EDUClass]map[flowrec.Direction]int {
	out := make(map[EDUClass]map[flowrec.Direction]int)
	for _, r := range recs {
		cls := ClassifyEDU(r)
		if out[cls] == nil {
			out[cls] = make(map[flowrec.Direction]int)
		}
		out[cls][r.Dir]++
	}
	return out
}

// eduLaneOrder fixes a lane index per Appendix B class for the dense
// count kernel; eduLaneSpotify/eduLaneOther must stay aligned with it.
var eduLaneOrder = []EDUClass{
	EDUWeb, EDUQUIC, EDUPush, EDUEmail, EDUVPN, EDUSSH, EDURemoteDesktop, EDUSpotify, EDUOther,
}

const (
	eduLaneSpotify = 7
	eduLaneOther   = 8
	// eduLaneMiss marks rows whose server port is in no Appendix B list;
	// the fixup pass resolves them to Spotify or Other by AS.
	eduLaneMiss = 9
)

// eduLanes compiles eduPortClasses into a port-lane table once. GRE and
// ESP entries carry Port 0 in the map, which is exactly the masked
// server port the scan produces for them.
var eduLanes = sync.OnceValue(func() *flowrec.PortLanes {
	laneOf := make(map[EDUClass]uint8, len(eduLaneOrder))
	for k, cls := range eduLaneOrder {
		laneOf[cls] = uint8(k)
	}
	t := flowrec.NewPortLanes(eduLaneMiss)
	for pp, cls := range eduPortClasses {
		t.Set(pp, laneOf[cls])
	}
	return t
})

// CountEDUByClassDirBatch counts connections (rows) per class and
// direction over a columnar batch, without materialising records.
//
// The scan is the tiled kernel pattern: a bulk port-lane pass, a
// branchless fixup resolving port-less rows to Spotify or Other by AS,
// then a paired scatter count over (class lane, direction byte). Counts
// are integers, so accumulation order cannot matter; a (class,
// direction) map key exists iff its count is non-zero — exactly the
// rows-seen semantics of the per-row map writes this replaces. The
// direction lane deliberately spans the full byte so rows carrying an
// out-of-range Dir value land under their own key, as they always did.
func CountEDUByClassDirBatch(b *flowrec.Batch) map[EDUClass]map[flowrec.Direction]int {
	tab := eduLanes()
	var acc [simd.PairLanes]uint64
	var lanes, dirs [simd.Tile]uint8
	n := b.Len()
	for lo := 0; lo < n; lo += simd.Tile {
		hi := min(lo+simd.Tile, n)
		b.ServerPortLanes(tab, lo, hi, lanes[:hi-lo])
		srcAS := b.SrcAS[lo:hi]
		dstAS := b.DstAS[lo:hi]
		dstAS = dstAS[:len(srcAS)]
		tl := lanes[:len(srcAS)]
		for i, s := range srcAS {
			spotify := s == spotifyASN || dstAS[i] == spotifyASN
			resolved := simd.Select8(spotify, eduLaneSpotify, eduLaneOther)
			tl[i] = simd.Select8(tl[i] == eduLaneMiss, resolved, tl[i])
		}
		dcol := b.Dir[lo:hi]
		td := dirs[:len(dcol)]
		for i, d := range dcol {
			td[i] = uint8(d)
		}
		simd.ScatterCountBytePairs(&acc, lanes[:hi-lo], dirs[:hi-lo])
	}

	out := make(map[EDUClass]map[flowrec.Direction]int)
	for k, cls := range eduLaneOrder {
		for d := 0; d < 256; d++ {
			if c := acc[k<<8|d]; c > 0 {
				if out[cls] == nil {
					out[cls] = make(map[flowrec.Direction]int)
				}
				out[cls][flowrec.Direction(d)] += int(c)
			}
		}
	}
	return out
}
