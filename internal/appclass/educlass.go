package appclass

import (
	"lockdown/internal/flowrec"
)

// EDUClass is one of the educational-network traffic classes of Appendix B.
// Unlike the Table 1 classes they are defined almost exclusively by
// well-known ports (plus one AS for Spotify), because the academic
// network's analysis is connection-oriented.
type EDUClass string

// The Appendix B traffic classes.
const (
	EDUWeb           EDUClass = "Web"
	EDUQUIC          EDUClass = "QUIC"
	EDUPush          EDUClass = "Push notifications"
	EDUEmail         EDUClass = "Email"
	EDUVPN           EDUClass = "VPN"
	EDUSSH           EDUClass = "SSH"
	EDURemoteDesktop EDUClass = "Remote desktop"
	EDUSpotify       EDUClass = "Spotify"
	EDUOther         EDUClass = "Other"
)

// AllEDUClasses lists the Appendix B classes in presentation order.
func AllEDUClasses() []EDUClass {
	return []EDUClass{EDUWeb, EDUQUIC, EDUPush, EDUEmail, EDUVPN, EDUSSH, EDURemoteDesktop, EDUSpotify}
}

// spotifyASN is the AS listed for Spotify in Appendix B; the synthetic
// registry maps it to a European hosting AS (see package synth).
const spotifyASN = 24940

// eduPortClasses maps server ports to their Appendix B class. QUIC is kept
// separate from Web even though Appendix B lists UDP/443 under both; the
// connection analysis of Section 7 tracks QUIC on its own (Figure 12).
var eduPortClasses = map[flowrec.PortProto]EDUClass{
	{Proto: flowrec.ProtoTCP, Port: 80}:   EDUWeb,
	{Proto: flowrec.ProtoTCP, Port: 443}:  EDUWeb,
	{Proto: flowrec.ProtoTCP, Port: 8000}: EDUWeb,
	{Proto: flowrec.ProtoTCP, Port: 8080}: EDUWeb,
	{Proto: flowrec.ProtoUDP, Port: 443}:  EDUQUIC,

	{Proto: flowrec.ProtoTCP, Port: 5223}: EDUPush,
	{Proto: flowrec.ProtoTCP, Port: 5228}: EDUPush,

	{Proto: flowrec.ProtoTCP, Port: 25}:  EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 110}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 143}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 465}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 587}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 993}: EDUEmail,
	{Proto: flowrec.ProtoTCP, Port: 995}: EDUEmail,

	{Proto: flowrec.ProtoUDP, Port: 500}:  EDUVPN,
	{Proto: flowrec.ProtoUDP, Port: 4500}: EDUVPN,
	{Proto: flowrec.ProtoTCP, Port: 1194}: EDUVPN,
	{Proto: flowrec.ProtoUDP, Port: 1194}: EDUVPN,
	{Proto: flowrec.ProtoGRE}:             EDUVPN,
	{Proto: flowrec.ProtoESP}:             EDUVPN,

	{Proto: flowrec.ProtoTCP, Port: 22}: EDUSSH,

	{Proto: flowrec.ProtoTCP, Port: 1494}: EDURemoteDesktop,
	{Proto: flowrec.ProtoUDP, Port: 1494}: EDURemoteDesktop,
	{Proto: flowrec.ProtoTCP, Port: 3389}: EDURemoteDesktop,
	{Proto: flowrec.ProtoTCP, Port: 5938}: EDURemoteDesktop,
	{Proto: flowrec.ProtoUDP, Port: 5938}: EDURemoteDesktop,

	{Proto: flowrec.ProtoTCP, Port: 4070}: EDUSpotify,
}

// classifyEDU attributes one educational-network flow from the values the
// Appendix B rules depend on: the service-side port and the AS endpoints.
func classifyEDU(srcAS, dstAS uint32, sp flowrec.PortProto) EDUClass {
	if cls, ok := eduPortClasses[sp]; ok {
		return cls
	}
	if srcAS == spotifyASN || dstAS == spotifyASN {
		return EDUSpotify
	}
	return EDUOther
}

// ClassifyEDU attributes a flow record of the educational network to its
// Appendix B class. Port matching is attempted first; the Spotify AS rule
// applies afterwards; everything else is EDUOther (the paper reports that
// 39% of flows cannot be labelled).
func ClassifyEDU(r flowrec.Record) EDUClass {
	return classifyEDU(r.SrcAS, r.DstAS, r.ServerPort())
}

// ClassifyEDUAt attributes batch row i, reading only the AS and port
// columns.
func ClassifyEDUAt(b *flowrec.Batch, i int) EDUClass {
	return classifyEDU(b.SrcAS[i], b.DstAS[i], b.ServerPortAt(i))
}

// CountEDUByClassDir counts connections (records) per class and direction.
func CountEDUByClassDir(recs []flowrec.Record) map[EDUClass]map[flowrec.Direction]int {
	out := make(map[EDUClass]map[flowrec.Direction]int)
	for _, r := range recs {
		cls := ClassifyEDU(r)
		if out[cls] == nil {
			out[cls] = make(map[flowrec.Direction]int)
		}
		out[cls][r.Dir]++
	}
	return out
}

// CountEDUByClassDirBatch counts connections (rows) per class and
// direction over a columnar batch, without materialising records.
func CountEDUByClassDirBatch(b *flowrec.Batch) map[EDUClass]map[flowrec.Direction]int {
	out := make(map[EDUClass]map[flowrec.Direction]int)
	for i := 0; i < b.Len(); i++ {
		cls := ClassifyEDUAt(b, i)
		if out[cls] == nil {
			out[cls] = make(map[flowrec.Direction]int)
		}
		out[cls][b.Dir[i]]++
	}
	return out
}
