package appclass

import (
	"net/netip"
	"testing"
	"time"

	"lockdown/internal/asdb"
	"lockdown/internal/flowrec"
)

func record(srcAS, dstAS uint32, proto flowrec.Proto, serverPort uint16) flowrec.Record {
	return flowrec.Record{
		Start:   time.Date(2020, 3, 25, 11, 0, 0, 0, time.UTC),
		End:     time.Date(2020, 3, 25, 11, 5, 0, 0, time.UTC),
		SrcIP:   netip.MustParseAddr("10.0.0.1"),
		DstIP:   netip.MustParseAddr("10.1.0.1"),
		SrcAS:   srcAS,
		DstAS:   dstAS,
		Proto:   proto,
		SrcPort: serverPort,
		DstPort: 51515,
		Bytes:   1000,
		Packets: 2,
	}
}

func TestClassifyTable1Classes(t *testing.T) {
	c := NewDefault(nil)
	cases := []struct {
		name string
		rec  flowrec.Record
		want Class
	}{
		{"zoom connector", record(30103, 64700, flowrec.ProtoUDP, 8801), WebConf},
		{"teams stun", record(8075, 64700, flowrec.ProtoUDP, 3480), WebConf},
		{"stun without provider", record(64700, 64801, flowrec.ProtoUDP, 3478), WebConf},
		{"netflix", record(2906, 64700, flowrec.ProtoTCP, 443), VoD},
		{"twitch", record(46489, 64700, flowrec.ProtoTCP, 443), VoD},
		{"tv streaming 8200", record(203561, 64700, flowrec.ProtoTCP, 8200), VoD},
		{"steam", record(32590, 64700, flowrec.ProtoUDP, 27015), Gaming},
		{"xbox port only", record(24940, 64700, flowrec.ProtoUDP, 3074), Gaming},
		{"facebook", record(32934, 64700, flowrec.ProtoTCP, 443), SocialMedia},
		{"tiktok", record(138699, 64700, flowrec.ProtoTCP, 443), SocialMedia},
		{"telegram", record(62041, 64700, flowrec.ProtoTCP, 443), Messaging},
		{"imaps", record(29838, 64700, flowrec.ProtoTCP, 993), Email},
		{"geant", record(20965, 64700, flowrec.ProtoTCP, 443), Educational},
		{"dropbox", record(19679, 64700, flowrec.ProtoTCP, 443), Collaborative},
		{"akamai", record(20940, 64700, flowrec.ProtoTCP, 443), CDN},
		{"cloudflare", record(13335, 64700, flowrec.ProtoTCP, 443), CDN},
		{"plain hosting web", record(24940, 64700, flowrec.ProtoTCP, 443), Unclassified},
		{"quic google", record(15169, 64700, flowrec.ProtoUDP, 443), Unclassified},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.rec); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestSpecificClassesWinOverCDN(t *testing.T) {
	c := NewDefault(nil)
	// Microsoft Teams traffic must not be swallowed by a broad filter
	// even though AS8075 also appears in cloud/CDN-like roles.
	r := record(8075, 64700, flowrec.ProtoUDP, 3480)
	if got := c.Classify(r); got != WebConf {
		t.Errorf("Teams STUN classified as %q, want %q", got, WebConf)
	}
}

func TestClassifyDirectionAgnostic(t *testing.T) {
	c := NewDefault(nil)
	// The provider AS may appear as destination (upstream direction).
	r := record(64700, 2906, flowrec.ProtoTCP, 443)
	if got := c.Classify(r); got != VoD {
		t.Errorf("reverse-direction Netflix flow classified as %q, want VoD", got)
	}
}

func TestInventoryMatchesTable1Shape(t *testing.T) {
	c := NewDefault(asdb.Default())
	rows := c.Inventory()
	if len(rows) != 9 {
		t.Fatalf("inventory has %d rows, want 9", len(rows))
	}
	byClass := make(map[Class]InventoryRow)
	for _, r := range rows {
		byClass[r.Class] = r
		if r.Filters == 0 {
			t.Errorf("%s: no filters", r.Class)
		}
	}
	// Table 1 shapes: email is port-only (no ASNs), VoD and CDN are
	// AS-only (no ports), gaming uses many ports.
	if byClass[Email].DistinctASNs != 0 || byClass[Email].DistinctPorts < 5 {
		t.Errorf("email row unexpected: %+v", byClass[Email])
	}
	if byClass[VoD].DistinctPorts > 1 {
		t.Errorf("VoD should be (almost) port-free: %+v", byClass[VoD])
	}
	if byClass[CDN].DistinctPorts != 0 || byClass[CDN].DistinctASNs < 5 {
		t.Errorf("CDN row unexpected: %+v", byClass[CDN])
	}
	if byClass[Gaming].DistinctPorts < 6 || byClass[Gaming].DistinctASNs < 5 {
		t.Errorf("gaming row unexpected: %+v", byClass[Gaming])
	}
	if byClass[WebConf].DistinctASNs < 3 {
		t.Errorf("web conf row unexpected: %+v", byClass[WebConf])
	}
}

func TestVolumeByClass(t *testing.T) {
	c := NewDefault(nil)
	recs := []flowrec.Record{
		record(2906, 64700, flowrec.ProtoTCP, 443),
		record(2906, 64700, flowrec.ProtoTCP, 443),
		record(32934, 64700, flowrec.ProtoTCP, 443),
	}
	v := c.VolumeByClass(recs)
	if v[VoD] != 2000 || v[SocialMedia] != 1000 {
		t.Errorf("VolumeByClass = %v", v)
	}
}

func TestAllClassesAndClasses(t *testing.T) {
	if len(AllClasses()) != 9 {
		t.Errorf("AllClasses returned %d entries", len(AllClasses()))
	}
	c := NewDefault(nil)
	if len(c.Classes()) != 9 {
		t.Errorf("Classes returned %d entries", len(c.Classes()))
	}
	if len(c.Filters(Gaming)) == 0 {
		t.Error("Filters(Gaming) empty")
	}
}

func TestClassifyEDU(t *testing.T) {
	cases := []struct {
		rec  flowrec.Record
		want EDUClass
	}{
		{record(3320, 64600, flowrec.ProtoTCP, 443), EDUWeb},
		{record(3320, 64600, flowrec.ProtoUDP, 443), EDUQUIC},
		{record(64600, 714, flowrec.ProtoTCP, 5223), EDUPush},
		{record(3320, 64600, flowrec.ProtoTCP, 993), EDUEmail},
		{record(3320, 64600, flowrec.ProtoUDP, 4500), EDUVPN},
		{record(3320, 64600, flowrec.ProtoTCP, 22), EDUSSH},
		{record(3320, 64600, flowrec.ProtoTCP, 3389), EDURemoteDesktop},
		{record(64600, 24940, flowrec.ProtoTCP, 4070), EDUSpotify},
		{record(64600, 24940, flowrec.ProtoTCP, 443), EDUWeb},
		{record(3320, 64600, flowrec.ProtoTCP, 12345), EDUOther},
	}
	for i, tc := range cases {
		if got := ClassifyEDU(tc.rec); got != tc.want {
			t.Errorf("case %d: ClassifyEDU = %q, want %q", i, got, tc.want)
		}
	}
	// GRE/ESP tunnelled traffic counts as VPN.
	gre := record(3320, 64600, flowrec.ProtoGRE, 0)
	if got := ClassifyEDU(gre); got != EDUVPN {
		t.Errorf("GRE classified as %q, want VPN", got)
	}
	if len(AllEDUClasses()) != 8 {
		t.Errorf("AllEDUClasses returned %d entries", len(AllEDUClasses()))
	}
}

func TestCountEDUByClassDir(t *testing.T) {
	in := record(3320, 64600, flowrec.ProtoTCP, 443)
	in.Dir = flowrec.DirIngress
	out := record(64600, 3320, flowrec.ProtoTCP, 443)
	out.Dir = flowrec.DirEgress
	counts := CountEDUByClassDir([]flowrec.Record{in, in, out})
	if counts[EDUWeb][flowrec.DirIngress] != 2 || counts[EDUWeb][flowrec.DirEgress] != 1 {
		t.Errorf("CountEDUByClassDir = %v", counts)
	}
}

// benchBatch builds a mixed batch that exercises every classification
// path: provider ASes, port-only classes and unclassified rows.
func benchBatch(rows int) *flowrec.Batch {
	b := flowrec.NewBatch(rows)
	asns := []uint32{30103, 2906, 32590, 32934, 62041, 20940, 64512, 64513}
	ports := []uint16{443, 80, 8801, 3074, 25, 993, 5222, 12345, 54321}
	for i := 0; i < rows; i++ {
		b.Append(flowrec.Record{
			SrcAS:   asns[i%len(asns)],
			DstAS:   asns[(i*3+1)%len(asns)],
			SrcPort: ports[i%len(ports)],
			DstPort: ports[(i*7+2)%len(ports)],
			Proto:   flowrec.ProtoTCP,
			Bytes:   uint64(1000 + i),
			Packets: 1,
		})
	}
	return b
}

// volumeByClassIntoMap is the pre-array-accumulator implementation (one
// map write per row), kept as the benchmark baseline for the scan loop.
func volumeByClassIntoMap(c *Classifier, sums map[Class]float64, b *flowrec.Batch) {
	for i := 0; i < b.Len(); i++ {
		sums[c.ClassifyAt(b, i)] += float64(b.Bytes[i])
	}
}

func BenchmarkVolumeByClassInto(bm *testing.B) {
	c := NewDefault(nil)
	b := benchBatch(4096)
	sums := make(map[Class]float64)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		c.VolumeByClassInto(sums, b)
	}
}

func BenchmarkVolumeByClassIntoMapBaseline(bm *testing.B) {
	c := NewDefault(nil)
	b := benchBatch(4096)
	sums := make(map[Class]float64)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		volumeByClassIntoMap(c, sums, b)
	}
}

// TestVolumeByClassIntoMatchesMapBaseline pins the array-accumulator
// rewrite bit-identical to the historic per-row map writes, including
// the key-presence semantics and multi-batch accumulation.
func TestVolumeByClassIntoMatchesMapBaseline(t *testing.T) {
	c := NewDefault(nil)
	b1, b2 := benchBatch(513), benchBatch(257)
	want := make(map[Class]float64)
	volumeByClassIntoMap(c, want, b1)
	volumeByClassIntoMap(c, want, b2)
	got := make(map[Class]float64)
	c.VolumeByClassInto(got, b1)
	c.VolumeByClassInto(got, b2)
	if len(want) != len(got) {
		t.Fatalf("key sets differ: want %v, got %v", want, got)
	}
	for k, wv := range want {
		if gv, ok := got[k]; !ok || gv != wv {
			t.Errorf("class %q: got %v, want %v", k, got[k], wv)
		}
	}
}
