// Package anon implements the address anonymisation described in the
// ethics section (2.1) of "The Lockdown Effect" (IMC 2020): IP addresses are hashed with a keyed
// function before any analysis so raw addresses never leave the vantage
// point.
//
// Two schemes are provided:
//
//   - Hasher: a keyed HMAC-SHA-256 mapping of a full address into a
//     synthetic address of the same family. Equal inputs map to equal
//     outputs (so flows can still be grouped and unique endpoints counted)
//     but the mapping cannot be reversed without the key.
//   - PrefixPreserving: a /24- (or /48-)granular variant that hashes the
//     host bits separately from the prefix bits so that analyses relying on
//     prefix locality (e.g. per-AS grouping after prefix→AS mapping) remain
//     meaningful.
package anon

import (
	"crypto/hmac"
	"crypto/sha256"
	"net/netip"
)

// Hasher anonymises addresses with a secret key. The zero value is not
// usable; construct with New.
type Hasher struct {
	key []byte
}

// New returns a Hasher using the given secret key. The key is copied.
func New(key []byte) *Hasher {
	return &Hasher{key: append([]byte(nil), key...)}
}

func (h *Hasher) mac(data []byte) []byte {
	m := hmac.New(sha256.New, h.key)
	m.Write(data)
	return m.Sum(nil)
}

// Addr maps addr to a synthetic address of the same family. The mapping is
// deterministic for a fixed key. Invalid addresses are returned unchanged.
func (h *Hasher) Addr(addr netip.Addr) netip.Addr {
	if !addr.IsValid() {
		return addr
	}
	b := addr.AsSlice()
	sum := h.mac(b)
	if addr.Is4() {
		var out [4]byte
		copy(out[:], sum[:4])
		return netip.AddrFrom4(out)
	}
	var out [16]byte
	copy(out[:], sum[:16])
	return netip.AddrFrom16(out)
}

// PrefixPreserving anonymises the host part of an address while keeping a
// keyed but consistent mapping for the network part, so that two addresses
// within the same /24 (IPv4) or /48 (IPv6) stay within one synthetic
// prefix.
type PrefixPreserving struct {
	h *Hasher
}

// NewPrefixPreserving returns a prefix-preserving anonymiser with the given
// key.
func NewPrefixPreserving(key []byte) *PrefixPreserving {
	return &PrefixPreserving{h: New(key)}
}

// Addr anonymises addr, preserving /24 (IPv4) or /48 (IPv6) prefix
// grouping: addresses sharing a real prefix share a synthetic prefix.
func (p *PrefixPreserving) Addr(addr netip.Addr) netip.Addr {
	if !addr.IsValid() {
		return addr
	}
	if addr.Is4() {
		raw := addr.As4()
		prefSum := p.h.mac(append([]byte{'p'}, raw[:3]...))
		hostSum := p.h.mac(append([]byte{'h'}, raw[:]...))
		var out [4]byte
		copy(out[:3], prefSum[:3])
		out[3] = hostSum[0]
		return netip.AddrFrom4(out)
	}
	raw := addr.As16()
	prefSum := p.h.mac(append([]byte{'p'}, raw[:6]...))
	hostSum := p.h.mac(append([]byte{'h'}, raw[:]...))
	var out [16]byte
	copy(out[:6], prefSum[:6])
	copy(out[6:], hostSum[:10])
	return netip.AddrFrom16(out)
}

// SamePrefix reports whether two anonymised IPv4 addresses produced by this
// anonymiser belong to the same synthetic /24 (or /48 for IPv6). It exists
// mainly for tests and sanity checks.
func SamePrefix(a, b netip.Addr) bool {
	if a.Is4() != b.Is4() {
		return false
	}
	if a.Is4() {
		ra, rb := a.As4(), b.As4()
		return ra[0] == rb[0] && ra[1] == rb[1] && ra[2] == rb[2]
	}
	ra, rb := a.As16(), b.As16()
	for i := 0; i < 6; i++ {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}
