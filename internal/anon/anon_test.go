package anon

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestHasherDeterministic(t *testing.T) {
	h := New([]byte("vantage-point-secret"))
	a := netip.MustParseAddr("203.0.113.7")
	if h.Addr(a) != h.Addr(a) {
		t.Error("same input should map to same output")
	}
}

func TestHasherChangesAddress(t *testing.T) {
	h := New([]byte("k"))
	a := netip.MustParseAddr("203.0.113.7")
	if h.Addr(a) == a {
		t.Error("anonymised address should differ from the original")
	}
}

func TestHasherKeyDependence(t *testing.T) {
	a := netip.MustParseAddr("203.0.113.7")
	if New([]byte("k1")).Addr(a) == New([]byte("k2")).Addr(a) {
		t.Error("different keys should produce different mappings")
	}
}

func TestHasherPreservesFamily(t *testing.T) {
	h := New([]byte("k"))
	v4 := netip.MustParseAddr("198.51.100.20")
	v6 := netip.MustParseAddr("2001:db8::1")
	if !h.Addr(v4).Is4() {
		t.Error("IPv4 input should map to IPv4 output")
	}
	if h.Addr(v6).Is4() {
		t.Error("IPv6 input should map to IPv6 output")
	}
}

func TestHasherInvalidPassthrough(t *testing.T) {
	h := New([]byte("k"))
	var invalid netip.Addr
	if h.Addr(invalid) != invalid {
		t.Error("invalid address should pass through unchanged")
	}
}

func TestHasherInjectiveOnSample(t *testing.T) {
	h := New([]byte("k"))
	seen := make(map[netip.Addr]netip.Addr)
	for i := 0; i < 256; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, byte(i / 16), byte(i)})
		out := h.Addr(a)
		if prev, ok := seen[out]; ok {
			t.Fatalf("collision: %v and %v both map to %v", prev, a, out)
		}
		seen[out] = a
	}
}

func TestPrefixPreserving(t *testing.T) {
	p := NewPrefixPreserving([]byte("k"))
	a := netip.MustParseAddr("192.0.2.10")
	b := netip.MustParseAddr("192.0.2.200")
	c := netip.MustParseAddr("198.51.100.10")
	pa, pb, pc := p.Addr(a), p.Addr(b), p.Addr(c)
	if !SamePrefix(pa, pb) {
		t.Error("addresses in the same /24 should share a synthetic prefix")
	}
	if SamePrefix(pa, pc) {
		t.Error("addresses in different /24s should not share a synthetic prefix")
	}
	if pa == pb {
		t.Error("different hosts should not map to the same address")
	}
}

func TestPrefixPreservingIPv6(t *testing.T) {
	p := NewPrefixPreserving([]byte("k"))
	a := netip.MustParseAddr("2001:db8:1::10")
	b := netip.MustParseAddr("2001:db8:1::beef")
	c := netip.MustParseAddr("2001:db8:2::10")
	if !SamePrefix(p.Addr(a), p.Addr(b)) {
		t.Error("same /48 should be preserved for IPv6")
	}
	if SamePrefix(p.Addr(a), p.Addr(c)) {
		t.Error("different /48s should diverge for IPv6")
	}
}

func TestSamePrefixMixedFamilies(t *testing.T) {
	if SamePrefix(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("::1")) {
		t.Error("different families can never share a prefix")
	}
}

// Property: anonymisation is deterministic and family-preserving for
// arbitrary IPv4 addresses.
func TestHasherQuick(t *testing.T) {
	h := New([]byte("quick"))
	f := func(raw [4]byte) bool {
		a := netip.AddrFrom4(raw)
		x, y := h.Addr(a), h.Addr(a)
		return x == y && x.Is4()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prefix preservation holds for arbitrary pairs within a /24.
func TestPrefixPreservingQuick(t *testing.T) {
	p := NewPrefixPreserving([]byte("quick"))
	f := func(net [3]byte, h1, h2 byte) bool {
		a := netip.AddrFrom4([4]byte{net[0], net[1], net[2], h1})
		b := netip.AddrFrom4([4]byte{net[0], net[1], net[2], h2})
		return SamePrefix(p.Addr(a), p.Addr(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
