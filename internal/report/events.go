package report

import (
	"io"
	"strings"

	"lockdown/internal/obs"
)

// WriteEvents renders structured run events as the human stderr summary.
// Every accounting line the CLI prints after a run — the dataset-cache
// totals, the flow-batch tier activity, wire bridge/pump stats, cluster
// shard health, rebalances, chaos relay counts and the DEGRADED RUN
// stamp — flows through here from one []obs.Event that is also Emit'd
// to the tracer, so the terminal and the trace file can never disagree.
//
// Rendering: "<msg>: <val> <key>, <val> <key>, ..." per event; a field
// with an empty key prints its value alone, a field with an empty value
// prints its key alone. Sub events indent two spaces under the previous
// headline. A Degraded event opens with a blank line and its message is
// expected to carry its own upper-case banner.
func WriteEvents(w io.Writer, events []obs.Event) error {
	var b strings.Builder
	for _, e := range events {
		b.Reset()
		if e.Severity == obs.Degraded && !e.Sub {
			b.WriteByte('\n')
		}
		if e.Sub {
			b.WriteString("  ")
		}
		b.WriteString(e.Msg)
		if len(e.Fields) > 0 {
			b.WriteString(": ")
			for i, f := range e.Fields {
				if i > 0 {
					b.WriteString(", ")
				}
				switch {
				case f.Key == "":
					b.WriteString(f.Val)
				case f.Val == "":
					b.WriteString(f.Key)
				default:
					b.WriteString(f.Val)
					b.WriteByte(' ')
					b.WriteString(f.Key)
				}
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
