// Package report renders experiment results (package core) as aligned
// plain-text tables, CSV and compact ASCII bar charts, for the CLI and the
// examples.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lockdown/internal/core"
)

// WriteText renders the result as aligned text tables followed by the
// metrics and notes.
func WriteText(w io.Writer, r *core.Result) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := writeTable(w, t); err != nil {
			return err
		}
	}
	if len(r.Metrics) > 0 {
		fmt.Fprintln(w, "metrics:")
		for _, k := range sortedKeys(r.Metrics) {
			fmt.Fprintf(w, "  %-60s %10.3f\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeTable(w io.Writer, t core.Table) error {
	if _, err := fmt.Fprintf(w, "\n%s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(sep, "  ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// WriteCSV renders every table of the result as CSV, separated by a line
// naming the table.
func WriteCSV(w io.Writer, r *core.Result) error {
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "# %s: %s\n", r.ID, t.Title); err != nil {
			return err
		}
		cw := csv.NewWriter(w)
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Bar renders a single horizontal ASCII bar of the given relative value
// (1.0 = full width).
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Chart renders labelled values as an ASCII bar chart, ordered as given.
func Chart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	max := 0.0
	labelWidth := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	for i, v := range values {
		if _, err := fmt.Fprintf(w, "  %s  %s %s\n", pad(labels[i], labelWidth), Bar(v, max, width),
			strconv.FormatFloat(v, 'f', 2, 64)); err != nil {
			return err
		}
	}
	return nil
}
