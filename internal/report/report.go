// Package report renders experiment results (package core) as aligned
// plain-text tables, CSV, JSON, compact ASCII bar charts, engine timing
// summaries and the generated EXPERIMENTS.md, for the CLI and the
// examples.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lockdown/internal/core"
)

// WriteText renders the result as aligned text tables followed by the
// metrics and notes.
func WriteText(w io.Writer, r *core.Result) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := writeTable(w, t); err != nil {
			return err
		}
	}
	if len(r.Metrics) > 0 {
		fmt.Fprintln(w, "metrics:")
		for _, k := range sortedKeys(r.Metrics) {
			fmt.Fprintf(w, "  %-60s %10.3f\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func writeTable(w io.Writer, t core.Table) error {
	if _, err := fmt.Fprintf(w, "\n%s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(sep, "  ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// WriteCSV renders every table of the result as CSV, separated by a line
// naming the table.
func WriteCSV(w io.Writer, r *core.Result) error {
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "# %s: %s\n", r.ID, t.Title); err != nil {
			return err
		}
		cw := csv.NewWriter(w)
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders one result as indented JSON.
func WriteJSON(w io.Writer, r *core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONAll renders results as one indented JSON array.
func WriteJSONAll(w io.Writer, rs []*core.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// WriteTimings renders the engine's per-experiment wall-time and
// allocation stats (the runtime metrics stamped by core.Engine) as a
// bench-style summary table, slowest first, followed by the total. The
// scan columns expose the intra-experiment sharding activity: how many
// grid chunks the experiment's sharded scans processed, how many extra
// workers they borrowed from the -parallel budget, and how many chunks
// the read-ahead prefetcher warmed.
func WriteTimings(w io.Writer, rs []*core.Result) error {
	type row struct {
		id         string
		wallMS     float64
		allocMB    float64
		chunks     float64
		extra      float64
		prefetched float64
	}
	rows := make([]row, 0, len(rs))
	var totalMS, totalMB, totalChunks, totalExtra, totalPrefetched float64
	for _, r := range rs {
		rw := row{
			id:         r.ID,
			wallMS:     r.Metric(core.MetricWallMS),
			allocMB:    r.Metric(core.MetricAllocMB),
			chunks:     r.Metric(core.MetricScanChunks),
			extra:      r.Metric(core.MetricScanWorkers),
			prefetched: r.Metric(core.MetricScanPrefetch),
		}
		totalMS += rw.wallMS
		totalMB += rw.allocMB
		totalChunks += rw.chunks
		totalExtra += rw.extra
		totalPrefetched += rw.prefetched
		rows = append(rows, rw)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].wallMS > rows[j].wallMS })
	t := core.Table{Title: "Timing summary (slowest first)", Columns: []string{"experiment", "wall ms", "alloc MB", "scan chunks", "extra workers", "prefetched"}}
	for _, rw := range rows {
		t.Rows = append(t.Rows, []string{rw.id, fmt.Sprintf("%.1f", rw.wallMS), fmt.Sprintf("%.1f", rw.allocMB),
			fmt.Sprintf("%.0f", rw.chunks), fmt.Sprintf("%.0f", rw.extra), fmt.Sprintf("%.0f", rw.prefetched)})
	}
	t.Rows = append(t.Rows, []string{"TOTAL (cpu)", fmt.Sprintf("%.1f", totalMS), fmt.Sprintf("%.1f", totalMB),
		fmt.Sprintf("%.0f", totalChunks), fmt.Sprintf("%.0f", totalExtra), fmt.Sprintf("%.0f", totalPrefetched)})
	return writeTable(w, t)
}

// WriteExperimentsDoc renders the generated EXPERIMENTS.md: an index table
// mapping experiment IDs to paper artifacts, followed by one section per
// experiment with its headline metrics and narrative notes. The document
// is produced from the registry and a real run, so it cannot drift from
// the code; runtime metrics are omitted.
func WriteExperimentsDoc(w io.Writer, rs []*core.Result) error {
	fmt.Fprintln(w, "# Experiments")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "<!-- Generated by `lockdown doc`; do not edit by hand.")
	fmt.Fprintln(w, "     Regenerate with: go run ./cmd/lockdown doc > EXPERIMENTS.md -->")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Every table and figure of \"The Lockdown Effect\" (IMC 2020) is")
	fmt.Fprintln(w, "reproduced by one registered experiment. The metrics below come from a")
	fmt.Fprintln(w, "real run of the engine at the default options. The flow-level")
	fmt.Fprintln(w, "experiments scan columnar `flowrec.Batch` inputs; the same batches")
	fmt.Fprintln(w, "round-trip the wire codecs via `EncodeV5Batch`/`DecodeV5Batch`")
	fmt.Fprintln(w, "(NetFlow v5) and `EncodeBatch`/`DecodeBatch` (NetFlow v9, IPFIX),")
	fmt.Fprintln(w, "so regenerating this document exercises the exact record layout the")
	fmt.Fprintln(w, "collector path consumes (see docs/ARCHITECTURE.md, \"Columnar flow")
	fmt.Fprintln(w, "batches\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The suite also runs over a live wire: `lockdown replay` streams every")
	fmt.Fprintln(w, "flow batch through real NetFlow v5/v9 or IPFIX export over UDP")
	fmt.Fprintln(w, "(`-format v5|v9|ipfix`), demuxes and verifies the received rows")
	fmt.Fprintln(w, "bit-for-bit against the model, and reproduces every metric below")
	fmt.Fprintln(w, "bit-identically — asserted by the race-enabled golden test in")
	fmt.Fprintln(w, "internal/replay (see docs/ARCHITECTURE.md, \"The wire-replay")
	fmt.Fprintln(w, "bridge\"). `lockdown cluster -shards N` runs the same suite")
	fmt.Fprintln(w, "distributed, the way the paper's vantage points were measured:")
	fmt.Fprintln(w, "the vantage points are partitioned over N exporter pumps (own")
	fmt.Fprintln(w, "processes with -subprocess), demuxed by wire stream identity —")
	fmt.Fprintln(w, "IPFIX observation domain, NetFlow v9 source ID, v5 engine ID —")
	fmt.Fprintln(w, "and every metric below is still reproduced bit-identically (see")
	fmt.Fprintln(w, "docs/ARCHITECTURE.md, \"The sharded cluster\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The wire path is built to survive faults without perturbing a metric:")
	fmt.Fprintln(w, "lost, duplicated, reordered or corrupted datagrams are detected,")
	fmt.Fprintln(w, "re-requested and accounted under a per-fetch retry budget")
	fmt.Fprintln(w, "(`-attempt-timeout`, `-max-attempts`, or wall-clock `-fetch-budget`);")
	fmt.Fprintln(w, "crashed pumps are restarted with jittered backoff, and a shard that")
	fmt.Fprintln(w, "exhausts `-max-restarts` has its vantage points re-partitioned over")
	fmt.Fprintln(w, "the survivors. `-chaos 'drop=0.05,kill=shard1@t+2s,seed=7'` injects a")
	fmt.Fprintln(w, "deterministic fault schedule to drill exactly that; `-allow-partial`")
	fmt.Fprintln(w, "trades completeness for liveness, serving exhausted keys as empty")
	fmt.Fprintln(w, "batches and stamping the run DEGRADED with the missing")
	fmt.Fprintln(w, "component-hours (see docs/ARCHITECTURE.md, \"Failure modes and")
	fmt.Fprintln(w, "recovery\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Memory is bounded by the tiered dataset cache: `-cache-budget 64M`")
	fmt.Fprintln(w, "(any of run/all/doc/replay/cluster) caps the resident flow batches;")
	fmt.Fprintln(w, "colder hours spill to checksummed columnar segment files under")
	fmt.Fprintln(w, "`-cache-dir` (default: OS temp dir) and mmap back in on access.")
	fmt.Fprintln(w, "Long-lived caches are compacted online: once enough standalone")
	fmt.Fprintln(w, "segments accumulate they are merged into one spanned file with an")
	fmt.Fprintln(w, "embedded per-span CRC index, opened and validated once and")
	fmt.Fprintln(w, "sub-sliced per hour on fault-in (`lockdown cache stat|compact`")
	fmt.Fprintln(w, "inspects and drives the same machinery offline). The budget never")
	fmt.Fprintln(w, "changes a metric — spilled batches round-trip bit for bit, spanned")
	fmt.Fprintln(w, "or not (see docs/ARCHITECTURE.md, \"The spillable dataset store\"")
	fmt.Fprintln(w, "and \"Scan kernels and the compacted segment tier\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The per-row column scans those experiments run — per-class byte")
	fmt.Fprintln(w, "volumes, VPN method splits, EDU class/direction counts, port")
	fmt.Fprintln(w, "histograms — share the `internal/simd` kernel package: unsafe-free,")
	fmt.Fprintln(w, "allocation-free widening sums and scatter accumulations written so")
	fmt.Fprintln(w, "the compiler can drop bounds checks and branches. The kernels")
	fmt.Fprintln(w, "accumulate in exact integer arithmetic and are quick-checked against")
	fmt.Fprintln(w, "their scalar references, so they change wall clock, never a metric")
	fmt.Fprintln(w, "(see docs/ARCHITECTURE.md, \"Scan kernels and the compacted segment")
	fmt.Fprintln(w, "tier\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Parallelism is two-level under one budget: `-parallel n` bounds the")
	fmt.Fprintln(w, "total worker count, experiments run concurrently on it, and the hour-")
	fmt.Fprintln(w, "and day-grid scans inside each experiment borrow whatever is spare")
	fmt.Fprintln(w, "(`-scan-chunk` tunes the merge granularity). Neither the worker count")
	fmt.Fprintln(w, "nor the chunk size changes a metric: partial aggregates merge exactly")
	fmt.Fprintln(w, "and in grid order (see docs/ARCHITECTURE.md, \"Intra-experiment")
	fmt.Fprintln(w, "sharding\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Every command is observable while it runs: `-metrics-addr :0` serves")
	fmt.Fprintln(w, "a Prometheus `/metrics` exposition of all `lockdown_*` instrument")
	fmt.Fprintln(w, "families (experiments, scan chunks, cache tiers, flowstore I/O,")
	fmt.Fprintln(w, "per-stream bridge accounting, cluster health, chaos faults) plus live")
	fmt.Fprintln(w, "pprof, and `-trace out.json` records a Chrome trace_event timeline —")
	fmt.Fprintln(w, "experiment and scan-chunk spans, cache spills/faults, bridge fetches")
	fmt.Fprintln(w, "and retries, shard restarts and rebalances — whose per-experiment")
	fmt.Fprintln(w, "span durations share the clock of the `_runtime/wall-ms` stamps.")
	fmt.Fprintln(w, "Neither flag changes a metric, and both cost zero when off (see")
	fmt.Fprintln(w, "docs/ARCHITECTURE.md, \"Observability\").")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The traffic model itself is declarative: `lockdown scenario run")
	fmt.Fprintln(w, "<file.yaml>` executes this same suite on a YAML-declared what-if")
	fmt.Fprintln(w, "timeline — shifted or repeated lockdown waves, extra holidays, flash")
	fmt.Fprintln(w, "events, link outages, an early return to office (see")
	fmt.Fprintln(w, "docs/SCENARIOS.md and the gallery under examples/scenarios/). The")
	fmt.Fprintln(w, "shipped default scenario restates the paper's timeline and compiles")
	fmt.Fprintln(w, "to the built-in model bit for bit, so its run reproduces every")
	fmt.Fprintln(w, "metric below byte-identically; any actual deviation tags the")
	fmt.Fprintln(w, "compiled model's fingerprints so caches never alias a variant with")
	fmt.Fprintln(w, "the golden default.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| ID | Paper artifact | Title |")
	fmt.Fprintln(w, "|----|----------------|-------|")
	for _, r := range rs {
		exp, ok := core.ByID(r.ID)
		if !ok {
			return fmt.Errorf("report: result %q has no registered experiment", r.ID)
		}
		fmt.Fprintf(w, "| `%s` | %s | %s |\n", exp.ID, exp.Artifact, exp.Title)
	}
	for _, r := range rs {
		exp, _ := core.ByID(r.ID)
		fmt.Fprintf(w, "\n## `%s` — %s\n\n", exp.ID, exp.Artifact)
		fmt.Fprintf(w, "%s\n", exp.Title)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			if !core.IsRuntimeMetric(k) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) > 0 {
			fmt.Fprintln(w)
			fmt.Fprintln(w, "| Metric | Value |")
			fmt.Fprintln(w, "|--------|-------|")
			for _, k := range keys {
				fmt.Fprintf(w, "| `%s` | %.3f |\n", k, r.Metrics[k])
			}
		}
		for _, n := range r.Notes {
			fmt.Fprintf(w, "\n> %s\n", n)
		}
	}
	return nil
}

// Bar renders a single horizontal ASCII bar of the given relative value
// (1.0 = full width).
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Chart renders labelled values as an ASCII bar chart, ordered as given.
func Chart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	max := 0.0
	labelWidth := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	for i, v := range values {
		if _, err := fmt.Fprintf(w, "  %s  %s %s\n", pad(labels[i], labelWidth), Bar(v, max, width),
			strconv.FormatFloat(v, 'f', 2, 64)); err != nil {
			return err
		}
	}
	return nil
}
