package report

import (
	"strings"
	"testing"

	"lockdown/internal/core"
)

func sampleResult() *core.Result {
	return &core.Result{
		ID:    "fig0",
		Title: "Sample experiment",
		Tables: []core.Table{
			{
				Title:   "Growth per week",
				Columns: []string{"week", "growth"},
				Rows:    [][]string{{"3", "1.00"}, {"13", "1.22"}},
			},
		},
		Metrics: map[string]float64{"week13": 1.22, "week3": 1.0},
		Notes:   []string{"growth peaks in week 13"},
	}
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig0", "Sample experiment", "Growth per week", "week", "1.22", "metrics:", "week13", "note: growth peaks"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns must be aligned: the separator row exists.
	if !strings.Contains(out, "----") {
		t.Error("expected a separator line")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "week,growth") || !strings.Contains(out, "13,1.22") {
		t.Errorf("CSV output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "# fig0: Growth per week") {
		t.Error("CSV output should name the table")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("Bar should clamp, got %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" || Bar(1, 10, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	err := Chart(&b, "Weekly growth", []string{"week 3", "week 13"}, []float64{1.0, 1.3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Weekly growth") || !strings.Contains(out, "week 13") || !strings.Contains(out, "#") {
		t.Errorf("chart output unexpected:\n%s", out)
	}
	if err := Chart(&b, "bad", []string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Error("mismatched labels/values accepted")
	}
}

func TestRenderRealExperiment(t *testing.T) {
	res, err := core.Run("tab2", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteText(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Netflix") {
		t.Error("rendered Table 2 should list Netflix")
	}
}
