// collectorpipe demonstrates the wire-format substrate end to end on the
// batch path: it generates one hour of synthetic IXP-CE flows as a
// columnar batch, exports it over UDP loopback in any of the three
// supported formats, collects the decoded batches, and classifies the
// received rows into the paper's application classes without ever
// materialising per-record structs.
//
//	go run ./examples/collectorpipe [-format v5|v9|ipfix]
//
// For the full experiment suite over the same wire (demuxed, verified
// bit-for-bit and fed into the engine), see `lockdown replay` and
// internal/replay.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"lockdown/internal/appclass"
	"lockdown/internal/collector"
	"lockdown/internal/flowrec"
	"lockdown/internal/synth"
)

func main() {
	formatName := flag.String("format", "ipfix", "wire format: v5, v9 or ipfix")
	flag.Parse()
	format, err := collector.ParseFormat(*formatName)
	if err != nil {
		log.Fatal(err)
	}

	// Collector side: batch mode streams one flowrec.Batch per datagram.
	col, err := collector.NewBatchCollector(format, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go col.Run(ctx)

	// Exporter side: one lockdown-evening hour of IXP-CE flows as a batch.
	cfg := synth.DefaultConfig(synth.IXPCE)
	cfg.FlowScale = 0.3
	g, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hour := time.Date(2020, 3, 25, 20, 0, 0, 0, time.UTC)
	flows := g.FlowsForHourBatch(hour)

	exp, err := collector.NewExporter(format, col.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Close()
	// Stamp the export at the end of the flows' hour so NetFlow v5's
	// uptime-relative timestamps stay representable (v9/IPFIX carry
	// absolute timestamps and ignore the distinction).
	if err := exp.ExportBatchAt(flows, hour.Add(time.Hour)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d flow records as %v to %s\n", flows.Len(), format, col.Addr())

	// Classify arriving batches column-wise; received batches go back to
	// the pool so the receive loop stays allocation-free.
	clf := appclass.NewDefault(nil)
	volumes := make(map[appclass.Class]float64)
	got := 0
	deadline := time.After(5 * time.Second)
loop:
	for got < flows.Len() {
		select {
		case b, ok := <-col.Batches():
			if !ok {
				break loop
			}
			got += b.Len()
			clf.VolumeByClassInto(volumes, b)
			flowrec.PutBatch(b)
		case <-deadline:
			break loop
		}
	}
	fmt.Printf("collected and classified %d records back\n\n", got)

	type kv struct {
		class appclass.Class
		gb    float64
	}
	var rows []kv
	for c, v := range volumes {
		rows = append(rows, kv{c, v / 1e9})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gb > rows[j].gb })
	fmt.Println("application classes of the received records:")
	for _, r := range rows {
		fmt.Printf("  %-15s %10.1f GB\n", r.class, r.gb)
	}
}
