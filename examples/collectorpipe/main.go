// collectorpipe demonstrates the wire-format substrate: it exports one
// hour of synthetic IXP-CE flows as IPFIX over UDP loopback, collects and
// decodes them, and classifies the received records into the paper's
// application classes.
//
//	go run ./examples/collectorpipe
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"lockdown/internal/appclass"
	"lockdown/internal/collector"
	"lockdown/internal/synth"
)

func main() {
	// Collector side.
	col, err := collector.NewCollector(collector.FormatIPFIX, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go col.Run(ctx)

	// Exporter side: one lockdown-evening hour of IXP-CE flows.
	cfg := synth.DefaultConfig(synth.IXPCE)
	cfg.FlowScale = 0.3
	g, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	flows := g.FlowsForHour(time.Date(2020, 3, 25, 20, 0, 0, 0, time.UTC))

	exp, err := collector.NewExporter(collector.FormatIPFIX, col.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Export(flows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d flow records as IPFIX to %s\n", len(flows), col.Addr())

	received := collector.Collect(col, len(flows), 5*time.Second)
	fmt.Printf("collected %d records back\n\n", len(received))

	// Classify what arrived.
	clf := appclass.NewDefault(nil)
	volumes := clf.VolumeByClass(received)
	type kv struct {
		class appclass.Class
		gb    float64
	}
	var rows []kv
	for c, v := range volumes {
		rows = append(rows, kv{c, v / 1e9})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gb > rows[j].gb })
	fmt.Println("application classes of the received records:")
	for _, r := range rows {
		fmt.Printf("  %-15s %10.1f GB\n", r.class, r.gb)
	}
}
