// vpnshift reproduces the Section 6 workflow end to end: build a DNS
// corpus, derive the *vpn* candidate addresses, generate IXP-CE flows for a
// pre-lockdown and a lockdown week, and compare how much VPN traffic the
// port-based and the domain-based classifiers identify.
//
//	go run ./examples/vpnshift
package main

import (
	"fmt"
	"log"

	"lockdown/internal/calendar"
	"lockdown/internal/dnsdb"
	"lockdown/internal/synth"
	"lockdown/internal/vpndetect"
)

func main() {
	cfg := synth.DefaultConfig(synth.IXPCE)
	cfg.FlowScale = 0.3 // keep the example quick
	g, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Build the synthetic domain corpus and derive the VPN candidates.
	corpus, gateways := dnsdb.Generate(g.Registry(), dnsdb.DefaultGenerateOptions())
	g.SetVPNGateways(gateways)
	det := vpndetect.NewFromCorpus(corpus)
	fmt.Printf("corpus: %d names, %d VPN candidate addresses\n\n", corpus.Len(), det.Candidates())

	weeks := calendar.AppWeeksIXP()[:2] // base week and March week
	for _, week := range weeks {
		var port, domain, other float64
		for _, hour := range week.Hours() {
			if !calendar.WorkingHours(hour.Hour()) || calendar.IsWeekend(hour) {
				continue
			}
			split := det.SplitBatch(g.FlowsForHourBatch(hour))
			port += split[vpndetect.ByPort]
			domain += split[vpndetect.ByDomain]
			other += split[vpndetect.NotVPN]
		}
		fmt.Printf("%-8s working hours: port-identified %6.1f TB, domain-identified %6.1f TB\n",
			week.Label, port/1e12, domain/1e12)
	}
	fmt.Println("\nThe port-identified share barely moves while the domain-identified share")
	fmt.Println("surges — identifying VPNs by well-known ports alone vastly undercounts them.")
}
