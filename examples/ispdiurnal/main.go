// ispdiurnal studies how the ISP-CE's diurnal pattern shifted with the
// lockdown: it prints the hourly profile of a pre-lockdown workday, a
// weekend day and a lockdown workday (Figure 2a) and then classifies every
// day of the study window as workday-like or weekend-like (Figures 2b/2c).
//
//	go run ./examples/ispdiurnal
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"lockdown/internal/calendar"
	"lockdown/internal/patterns"
	"lockdown/internal/report"
	"lockdown/internal/synth"
)

func main() {
	g, err := synth.NewDefault(synth.ISPCE)
	if err != nil {
		log.Fatal(err)
	}

	days := map[string]time.Time{
		"Wed Feb 19 (pre-lockdown workday)": time.Date(2020, 2, 19, 0, 0, 0, 0, time.UTC),
		"Sat Feb 22 (weekend)":              time.Date(2020, 2, 22, 0, 0, 0, 0, time.UTC),
		"Wed Mar 25 (lockdown workday)":     time.Date(2020, 3, 25, 0, 0, 0, 0, time.UTC),
	}
	for label, day := range days {
		s := g.TotalSeries(day, day.AddDate(0, 0, 1)).NormalizeByMax()
		var labels []string
		var values []float64
		for h := 0; h < 24; h += 2 {
			labels = append(labels, fmt.Sprintf("%02d:00", h))
			values = append(values, s.Values()[h])
		}
		if err := report.Chart(os.Stdout, label, labels, values, 40); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Train the pattern classifier on February and classify the study
	// window, exactly as Section 1 describes.
	hourly := g.TotalSeries(calendar.StudyStart, time.Date(2020, 5, 12, 0, 0, 0, 0, time.UTC))
	clf, err := patterns.Train(hourly,
		time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC),
		patterns.DefaultBinHours)
	if err != nil {
		log.Fatal(err)
	}
	results := clf.ClassifyRange(hourly, calendar.StudyStart, time.Date(2020, 5, 12, 0, 0, 0, 0, time.UTC))
	fmt.Println("per-week classification of actual workdays:")
	for _, s := range patterns.Summarize(results) {
		fmt.Printf("  week %2d: %d of %d workdays look like weekends\n", s.Week, s.WorkdaysWeekendLike, s.Workdays)
	}
}
