// Quickstart: generate synthetic ISP traffic for the study window, run the
// headline experiment (Figure 1 weekly growth) and print it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"lockdown/internal/calendar"
	"lockdown/internal/core"
	"lockdown/internal/report"
	"lockdown/internal/synth"
)

func main() {
	// 1. Build a generator for the Central European ISP and look at a
	//    single lockdown day.
	g, err := synth.NewDefault(synth.ISPCE)
	if err != nil {
		log.Fatal(err)
	}
	day := time.Date(2020, 3, 25, 0, 0, 0, 0, time.UTC)
	fmt.Printf("ISP-CE on %s (lockdown Wednesday):\n", day.Format("2006-01-02"))
	var labels []string
	var values []float64
	for h := 0; h < 24; h += 3 {
		labels = append(labels, fmt.Sprintf("%02d:00", h))
		values = append(values, g.HourlyVolume(day.Add(time.Duration(h)*time.Hour))/1e12)
	}
	if err := report.Chart(os.Stdout, "hourly volume (TB)", labels, values, 40); err != nil {
		log.Fatal(err)
	}

	// 2. How much did the week grow over the pre-pandemic baseline?
	base := g.TotalSeries(calendar.StudyStart, calendar.StudyEnd).WeeklyMeans()
	fmt.Printf("\nweek 13 vs week 3: %+.0f%%\n\n", (base[13]/base[3]-1)*100)

	// 3. Run the full Figure 1 experiment across every vantage point.
	res, err := core.Run("fig1", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteText(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
}
