// edunetwork reproduces the Section 7 analysis of the educational
// metropolitan network: the collapse of workday volume, the inversion of
// the ingress/egress ratio and the growth of incoming remote-access
// connections.
//
//	go run ./examples/edunetwork
package main

import (
	"fmt"
	"log"
	"time"

	"lockdown/internal/calendar"
	"lockdown/internal/edu"
	"lockdown/internal/flowrec"
	"lockdown/internal/synth"
)

func main() {
	cfg := synth.DefaultConfig(synth.EDU)
	cfg.FlowScale = 0.5
	g, err := synth.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	weeks := calendar.EDUWeeks()

	// Volume per day for the three key weeks.
	hourly := g.TotalSeries(weeks[0].Start, weeks[2].End)
	profiles, err := edu.VolumeByWeek(hourly, weeks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("normalised daily volume (minimum day = 1):")
	for _, p := range profiles {
		fmt.Printf("  %-17s", p.Label)
		for _, d := range p.Days {
			fmt.Printf(" %s %5.2f ", d.Day.Weekday().String()[:3], d.Value)
		}
		fmt.Println()
	}
	fmt.Printf("workday volume change base -> online lecturing: %+.0f%%\n\n",
		edu.WorkdayDrop(profiles[0], profiles[2])*100)

	// Ingress/egress ratio.
	in, out := g.DirectionSeries(weeks[0].Start, weeks[2].End)
	ratios, err := edu.InOutRatio(in, out, weeks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ingress/egress ratio (Tuesday of each week):")
	for _, p := range ratios {
		fmt.Printf("  %-17s %5.1f\n", p.Label, p.Days[5].Value)
	}
	fmt.Println()

	// Connection growth for the remote-access classes.
	baseline := time.Date(2020, 2, 27, 0, 0, 0, 0, time.UTC)
	days := []time.Time{baseline, time.Date(2020, 4, 21, 0, 0, 0, 0, time.UTC)}
	byDay := map[time.Time]*flowrec.Batch{}
	for _, d := range days {
		byDay[d] = g.FlowsBetweenBatch(d, d.AddDate(0, 0, 1))
	}
	counts := edu.CountConnections(byDay)
	growth := edu.ConnectionGrowth(counts, baseline, append(edu.DefaultCategories(), edu.ExtraCategories()...))
	fmt.Println("connection growth on Apr 21 relative to Feb 27:")
	for _, cat := range append(edu.DefaultCategories(), edu.ExtraCategories()...) {
		if s, ok := growth.Series[cat.Name]; ok {
			fmt.Printf("  %-28s %5.1fx\n", cat.Name, s.Values()[len(s.Values())-1])
		}
	}
}
