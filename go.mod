module lockdown

go 1.24
