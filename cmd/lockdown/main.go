// Command lockdown regenerates the tables and figures of "The Lockdown
// Effect" (IMC 2020) from the synthetic vantage-point models.
//
// Usage:
//
//	lockdown list                 list all experiments
//	lockdown run <id> [flags]     run one experiment (e.g. fig1, tab1, fig11a)
//	lockdown all [flags]          run every experiment on the parallel engine
//	lockdown doc [flags]          emit the generated EXPERIMENTS.md to stdout
//	lockdown replay [flags]       run every experiment over live wire export
//	lockdown cluster [flags]      run every experiment over N sharded pumps
//	lockdown pump [flags]         serve one cluster shard (spawned by cluster)
//	lockdown scenario validate <file>  check a declarative scenario file
//	lockdown scenario run <file> [flags]  run the suite on a scenario model
//	lockdown scenario doc         emit the scenario schema reference
//
// A scenario is a YAML file (see docs/SCENARIOS.md and the gallery under
// examples/scenarios/) declaring vantage points, membership and class
// mixes, and an event timeline — lockdown waves, holidays, flash events,
// link outages, a return to office — that compiles down to the built-in
// synthetic traffic model. The shipped default scenario restates the
// paper's timeline and `scenario run` on it is byte-identical to `all`;
// a scenario's declared seed/flow_scale are defaults that explicit
// -seed/-scale flags override.
//
// Flags for run/all/doc/replay/cluster:
//
//	-csv          emit CSV instead of aligned text tables (run/all/replay/cluster)
//	-json         emit JSON instead of text tables (run/all/replay/cluster)
//	-scale f      flow sampling density for flow-level experiments (default 0.5)
//	-seed n       generator seed override
//	-parallel n   global worker budget for all/doc/replay/cluster (default
//	              GOMAXPROCS). One budget governs both scheduling levels:
//	              experiments run concurrently on it, and the sharded scans
//	              inside each experiment borrow whatever is spare, so total
//	              concurrency never exceeds n (see internal/core.ShardedScan)
//	-scan-chunk n grid items per intra-experiment scan chunk (0 = per-scan
//	              default: 24 for hour grids, 1 for vantage-point/day grids).
//	              Output is byte-identical at any chunk size
//	-cpuprofile f write a pprof CPU profile of the command to f
//	-memprofile f write a pprof heap profile (after the run) to f
//	-metrics-addr a  serve live observability over HTTP at a for the life
//	              of the command: /metrics is the Prometheus text
//	              exposition of every lockdown_* instrument (engine, scan,
//	              cache, flowstore, bridge, collector, cluster, chaos),
//	              /debug/pprof/ the standard live profiler. ':0' picks a
//	              free port and prints it to stderr
//	-trace f      write a Chrome trace_event JSON trace of the run to f
//	              (open in Perfetto or chrome://tracing): spans for every
//	              experiment and scan chunk, cache spill/fault/regen,
//	              bridge fetches and retries, pump restarts, rebalances
//	              and injected faults. The per-experiment span durations
//	              are the same clock as the _runtime/wall-ms metrics
//	-cache-budget n  resident flow-batch cache cap (bytes, K/M/G suffixes;
//	              0 = unlimited). Colder hours spill to mmap-backed columnar
//	              segments and fault back in; output is byte-identical at
//	              any budget (see internal/flowstore)
//	-cache-dir d  directory for spilled segments (default: OS temp dir)
//	-format f     replay/cluster wire format: v5, v9 or ipfix (default ipfix)
//	-addr a       replay/cluster bridge UDP listen address (default 127.0.0.1:0)
//	-pps f        replay/cluster pump pacing, datagrams per second (0 = unlimited)
//	-unverified   replay only: capture mode, serve wire rows without failing on
//	              verification mismatches (accounted in the bridge stats)
//	-attempt-timeout d  replay/cluster: per-attempt bucket collection timeout
//	              (default 2s)
//	-max-attempts n  replay/cluster: attempts per bucket (default 5)
//	-fetch-budget d  replay/cluster: wall-clock retry budget per bucket; when
//	              set it replaces the flat attempt-timeout × max-attempts cap
//	              and alone decides when the bridge gives up
//	-allow-partial  replay/cluster: serve explicitly-accounted empty batches
//	              for buckets whose retry budget ran out instead of failing
//	              the run; the degraded component-hours are stamped on stderr
//	-shards n     cluster only: number of pump shards (default 4)
//	-subprocess   cluster only: run each pump as its own `lockdown pump` process
//	-max-restarts n  cluster only: restarts per shard before it is declared
//	              dead and its vantage points re-partition away (default 3)
//	-chaos spec   cluster only: deterministic fault injection, e.g.
//	              'drop=0.05,kill=shard1@t+2s,seed=7' (drop/dup/reorder/
//	              corrupt probabilities, delay, kill/stall schedules; see
//	              internal/faultinject). Same seed, same faults; output
//	              stays byte-identical to `all` while faults are recoverable
//
// `replay` runs the same suite as `all`, but every flow batch travels a
// real UDP wire first: a pump exports the synthetic component-hours as
// NetFlow v5/v9 or IPFIX packets and the bridge decodes, demuxes and
// verifies them bit-for-bit before the engine consumes them (see
// internal/replay). The results are byte-identical to `all`; the wire
// and loss accounting is printed to stderr.
//
// `cluster` is `replay` distributed the way the paper's measurement
// actually was: the vantage points are partitioned over N pumps — each
// with its own wire stream identity (IPFIX observation domain, NetFlow
// v9 source ID, v5 engine ID) — and the bridge demuxes their
// interleaved export per stream, with N buckets in flight concurrently
// (see internal/cluster). Pumps run as in-process goroutines or (with
// -subprocess) separate `lockdown pump` processes; either way a crashed
// pump restarts under jittered backoff, and a pump that exhausts
// -max-restarts is declared dead and its vantage points re-partition
// over the survivors. -chaos injects a seeded, reproducible fault
// schedule (datagram faults on the wire, scheduled pump kills) to
// exercise exactly those paths. The results remain byte-identical to
// `all`; per-shard wire accounting, health history and rebalance events
// are printed to stderr.
//
// `all` prints a bench-style timing summary and the dataset-cache stats to
// stderr after the results. The profile flags exist so performance work on
// the flow path can be driven by pprof evidence instead of guesswork:
//
//	lockdown all -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"lockdown/internal/cluster"
	"lockdown/internal/collector"
	"lockdown/internal/core"
	"lockdown/internal/faultinject"
	"lockdown/internal/flowstore"
	"lockdown/internal/obs"
	"lockdown/internal/replay"
	"lockdown/internal/report"
	"lockdown/internal/scenario"
	"lockdown/internal/synth"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lockdown list
  lockdown run <experiment-id> [-csv|-json] [-scale f] [-seed n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f] [-metrics-addr a] [-trace f]
  lockdown all [-csv|-json] [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f] [-metrics-addr a] [-trace f]
  lockdown doc [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f] [-metrics-addr a] [-trace f]
  lockdown replay [-format v5|v9|ipfix] [-addr host:port] [-pps f] [-unverified] [-attempt-timeout d] [-max-attempts n] [-fetch-budget d] [-allow-partial] [-csv|-json] [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f] [-metrics-addr a] [-trace f]
  lockdown cluster [-shards n] [-subprocess] [-max-restarts n] [-chaos spec] [-format v5|v9|ipfix] [-addr host:port] [-pps f] [-attempt-timeout d] [-max-attempts n] [-fetch-budget d] [-allow-partial] [-csv|-json] [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f] [-metrics-addr a] [-trace f]
  lockdown pump -data host:port [-format v5|v9|ipfix] [-ctrl host:port] [-shard i/n] [-scale f] [-seed n] [-pps f]
  lockdown scenario validate <file.yaml>
  lockdown scenario run <file.yaml> [same flags as all]
  lockdown scenario doc
  lockdown cache stat <dir>
  lockdown cache compact <dir>

experiments:
`)
	for _, e := range core.All() {
		fmt.Fprintf(os.Stderr, "  %-18s %-22s %s\n", e.ID, e.Artifact, e.Title)
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first interrupt has cancelled ctx, stop capturing SIGINT
	// so a second Ctrl-C terminates the process immediately instead of
	// waiting for in-flight experiments to finish.
	context.AfterFunc(ctx, stop)
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range core.All() {
			fmt.Printf("%-18s %-22s %s\n", e.ID, e.Artifact, e.Title)
		}
		return nil
	case "pump":
		// The exporter half of a subprocess cluster; it has its own flag
		// shape and speaks the READY handshake on stdout, so it bypasses
		// the shared flag set below.
		return cluster.PumpMain(ctx, args[1:], os.Stdin, os.Stdout)
	case "scenario":
		if len(args) < 2 {
			usage()
			return fmt.Errorf("scenario needs a subcommand: validate, run or doc")
		}
		switch args[1] {
		case "doc":
			fmt.Print(scenario.SchemaDoc())
			return nil
		case "validate":
			if len(args) != 3 {
				return fmt.Errorf("usage: lockdown scenario validate <file.yaml>")
			}
			s, err := scenario.Load(args[2])
			if err != nil {
				return err
			}
			shape := "variant model"
			if s.Identity() {
				shape = "identity (compiles to the built-in model)"
			}
			fmt.Printf("scenario %q: %d vantage points, %d events, %s\n",
				s.Name, len(s.VPs), len(s.Events), shape)
			return nil
		case "run":
			if len(args) < 3 {
				return fmt.Errorf("usage: lockdown scenario run <file.yaml> [flags]")
			}
			// Re-enter the shared flag machinery as the synthetic
			// scenario-run command, with the file where run's id goes.
			return run(ctx, append([]string{"scenario-run", args[2]}, args[3:]...))
		default:
			return fmt.Errorf("unknown scenario subcommand %q (want validate, run or doc)", args[1])
		}
	case "cache":
		// Operator tooling for a persistent -cache-dir: inspect segment
		// and spanned-file integrity, or merge idle segments the way the
		// dataset's online compaction would.
		if len(args) != 3 {
			return fmt.Errorf("usage: lockdown cache stat|compact <dir>")
		}
		dir := args[2]
		switch args[1] {
		case "stat":
			st, err := flowstore.StatDir(dir)
			if err != nil {
				return err
			}
			fmt.Printf("segments: %d intact (%.1f MB), %d damaged\n",
				st.Segments, float64(st.SegmentBytes)/(1<<20), st.SegmentsBad)
			fmt.Printf("spanned:  %d intact (%.1f MB, %d spans, %d damaged spans), %d damaged files\n",
				st.SpannedFiles, float64(st.SpannedBytes)/(1<<20), st.Spans, st.SpansBad, st.SpannedBad)
			for _, f := range st.BadFiles {
				fmt.Printf("damaged: %s\n", f)
			}
			if len(st.BadFiles) > 0 {
				return fmt.Errorf("%d damaged files", len(st.BadFiles))
			}
			return nil
		case "compact":
			cr, err := flowstore.CompactDir(dir)
			if err != nil {
				return err
			}
			if cr == nil {
				fmt.Println("no segment files to compact")
				return nil
			}
			fmt.Printf("compacted %d segments into %s (%.1f MB)\n",
				cr.Spans, cr.Output, float64(cr.Size)/(1<<20))
			for _, s := range cr.Skipped {
				fmt.Printf("skipped (damaged, left in place): %s\n", s)
			}
			return nil
		default:
			return fmt.Errorf("unknown cache subcommand %q (want stat or compact)", args[1])
		}
	case "run", "all", "doc", "replay", "cluster", "scenario-run":
		fs := flag.NewFlagSet(args[0], flag.ContinueOnError)
		csvOut := fs.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut := fs.Bool("json", false, "emit JSON instead of text tables")
		scale := fs.Float64("scale", 0.5, "flow sampling density for flow-level experiments")
		seed := fs.Int64("seed", 0, "generator seed override (0 = default)")
		parallel := fs.Int("parallel", 0, "worker count for all/doc/replay/cluster (0 = GOMAXPROCS)")
		cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
		metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (':0' picks a free port; empty = off)")
		tracePath := fs.String("trace", "", "write a Chrome trace_event JSON trace of the run to this file (empty = off)")
		cacheBudget := fs.String("cache-budget", "0", "resident flow-batch cache budget (bytes, K/M/G suffixes; 0 = unlimited, no spilling)")
		cacheDir := fs.String("cache-dir", "", "directory for spilled flow-batch segments (default: OS temp dir)")
		scanChunk := fs.Int("scan-chunk", 0, "grid items per intra-experiment scan chunk (0 = per-scan default; never changes results)")
		formatName := fs.String("format", "ipfix", "replay/cluster wire format: v5, v9 or ipfix")
		addr := fs.String("addr", "127.0.0.1:0", "replay/cluster bridge UDP listen address")
		pps := fs.Float64("pps", 0, "pump pacing in datagrams per second (0 = unlimited)")
		unverified := fs.Bool("unverified", false, "replay capture mode: serve wire rows without failing verification")
		attemptTimeout := fs.Duration("attempt-timeout", 0, "replay/cluster per-attempt bucket timeout (0 = default)")
		maxAttempts := fs.Int("max-attempts", 0, "replay/cluster attempts per bucket (0 = default)")
		fetchBudget := fs.Duration("fetch-budget", 0, "replay/cluster wall-clock retry budget per bucket (0 = attempt-timeout × max-attempts)")
		allowPartial := fs.Bool("allow-partial", false, "replay/cluster: degrade to accounted empty batches instead of failing when a bucket's retries run out")
		shards := fs.Int("shards", cluster.DefaultShards, "cluster pump shard count")
		subprocess := fs.Bool("subprocess", false, "cluster: run each pump as its own process")
		maxRestarts := fs.Int("max-restarts", 0, "cluster restarts per shard before give-up and re-partition (0 = default)")
		chaosSpec := fs.String("chaos", "", "cluster fault-injection spec, e.g. 'drop=0.05,kill=shard1@t+2s,seed=7'")

		rest := args[1:]
		var id string
		if args[0] == "run" || args[0] == "scenario-run" {
			if len(args) < 2 {
				usage()
				return fmt.Errorf("run needs an experiment id")
			}
			// For scenario-run, id carries the scenario file path.
			id = args[1]
			rest = args[2:]
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *csvOut && *jsonOut {
			return fmt.Errorf("-csv and -json are mutually exclusive")
		}
		// The flag set is shared across subcommands; reject flags that do
		// not apply to the one being run instead of silently ignoring them.
		switch args[0] {
		case "run":
			if *parallel != 0 {
				return fmt.Errorf("-parallel only applies to all/doc/replay/cluster")
			}
		case "doc":
			if *csvOut || *jsonOut {
				return fmt.Errorf("doc always emits markdown; -csv/-json only apply to run/all/replay/cluster")
			}
		}
		if args[0] != "replay" && args[0] != "cluster" {
			if *formatName != "ipfix" || *addr != "127.0.0.1:0" || *pps != 0 {
				return fmt.Errorf("-format/-addr/-pps only apply to replay/cluster")
			}
		}
		if args[0] != "replay" && *unverified {
			return fmt.Errorf("-unverified only applies to replay")
		}
		if args[0] != "replay" && args[0] != "cluster" {
			if *attemptTimeout != 0 || *maxAttempts != 0 || *fetchBudget != 0 || *allowPartial {
				return fmt.Errorf("-attempt-timeout/-max-attempts/-fetch-budget/-allow-partial only apply to replay/cluster")
			}
		}
		if args[0] != "cluster" && (*shards != cluster.DefaultShards || *subprocess || *maxRestarts != 0 || *chaosSpec != "") {
			return fmt.Errorf("-shards/-subprocess/-max-restarts/-chaos only apply to cluster")
		}
		if *attemptTimeout < 0 || *fetchBudget < 0 {
			return fmt.Errorf("-attempt-timeout and -fetch-budget must not be negative")
		}
		if *maxAttempts < 0 || *maxRestarts < 0 {
			return fmt.Errorf("-max-attempts and -max-restarts must not be negative")
		}
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			defer f.Close()
			if err := pprof.StartCPUProfile(f); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			defer pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			defer func() {
				f, err := os.Create(*memProfile)
				if err != nil {
					fmt.Fprintln(os.Stderr, "lockdown: memprofile:", err)
					return
				}
				defer f.Close()
				runtime.GC() // materialise the live heap before snapshotting
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "lockdown: memprofile:", err)
				}
			}()
		}
		// Observability backends live for the whole command: the metrics
		// server keeps serving scrapes while experiments run, and the
		// trace file is finalised (the JSON array closed) on the way out,
		// after the run's last span has ended.
		var reg *obs.Registry
		if *metricsAddr != "" {
			reg = obs.NewRegistry()
			srv, err := obs.Serve(*metricsAddr, reg)
			if err != nil {
				return fmt.Errorf("-metrics-addr: %w", err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics (live pprof under /debug/pprof/)\n", srv.Addr())
		}
		var tracer *obs.Tracer
		if *tracePath != "" {
			tr, err := obs.Create(*tracePath)
			if err != nil {
				return fmt.Errorf("-trace: %w", err)
			}
			tracer = tr
			defer func() {
				if err := tracer.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "lockdown: trace:", err)
					return
				}
				fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", tracer.Events(), *tracePath)
			}()
		}
		budget, err := parseSize(*cacheBudget)
		if err != nil {
			return fmt.Errorf("-cache-budget: %w", err)
		}
		opts := core.Options{FlowScale: *scale, Seed: *seed, CacheBudget: budget, CacheDir: *cacheDir, ScanChunk: *scanChunk, Obs: reg, Tracer: tracer}
		if args[0] == "scenario-run" {
			s, err := scenario.Load(id)
			if err != nil {
				return err
			}
			// The scenario's declared seed/flow_scale are defaults only;
			// a flag the user actually set on the command line wins.
			explicit := map[string]bool{}
			fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			if s.FlowScale != 0 && !explicit["scale"] {
				opts.FlowScale = s.FlowScale
			}
			if s.Seed != 0 && !explicit["seed"] {
				opts.Seed = s.Seed
			}
			declared := map[synth.VantagePoint]bool{}
			for _, vp := range s.VPs {
				declared[vp] = true
			}
			opts.Model = func(vp synth.VantagePoint) synth.Config {
				if declared[vp] {
					return s.Config(vp)
				}
				// Vantage points the scenario does not declare keep the
				// untouched built-in model.
				return synth.DefaultConfig(vp)
			}
			fmt.Fprintf(os.Stderr, "scenario: %q from %s\n", s.Name, s.File())
		}

		tuning := retryTuning{
			attemptTimeout: *attemptTimeout,
			maxAttempts:    *maxAttempts,
			fetchBudget:    *fetchBudget,
			allowPartial:   *allowPartial,
		}
		if args[0] == "replay" {
			return runReplay(ctx, opts, *formatName, *addr, *pps, *unverified, tuning, *parallel, *csvOut, *jsonOut)
		}
		if args[0] == "cluster" {
			return runCluster(ctx, opts, *formatName, *addr, *pps, *shards, *subprocess, *maxRestarts, *chaosSpec, tuning, *parallel, *csvOut, *jsonOut)
		}
		engine := core.NewEngine(opts)
		defer engine.Data().Close()

		switch args[0] {
		case "run":
			res, err := engine.Run(ctx, id)
			if err != nil {
				return err
			}
			return emit(res, *csvOut, *jsonOut)
		case "all", "scenario-run":
			results, err := engine.RunAll(ctx, *parallel)
			if err != nil {
				return err
			}
			return emitSuite(results, engine.Data(), tracer, *csvOut, *jsonOut)
		default: // doc
			results, err := engine.RunAll(ctx, *parallel)
			if err != nil {
				return err
			}
			return report.WriteExperimentsDoc(os.Stdout, results)
		}
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// retryTuning carries the shared bridge retry/degradation flags of the
// replay and cluster subcommands.
type retryTuning struct {
	attemptTimeout time.Duration
	maxAttempts    int
	fetchBudget    time.Duration
	allowPartial   bool
}

// runReplay executes the full experiment suite over a live loopback wire
// pair: a replay.Pump exports every requested component-hour as real
// NetFlow/IPFIX packets, and a replay.Bridge feeds the decoded,
// bit-for-bit verified batches into the engine as its FlowSource. The
// emitted results are byte-identical to `lockdown all` at the same
// options; the wire and loss accounting goes to stderr.
func runReplay(ctx context.Context, opts core.Options, formatName, addr string, pps float64, unverified bool, tuning retryTuning, parallel int, asCSV, asJSON bool) error {
	format, err := collector.ParseFormat(formatName)
	if err != nil {
		return err
	}
	br, err := replay.NewBridge(replay.Config{
		Format:         format,
		ListenAddr:     addr,
		Options:        opts,
		Unverified:     unverified,
		AttemptTimeout: tuning.attemptTimeout,
		MaxAttempts:    tuning.maxAttempts,
		FetchBudget:    tuning.fetchBudget,
		AllowPartial:   tuning.allowPartial,
	})
	if err != nil {
		return err
	}
	defer br.Close()
	pump, err := replay.NewPump(replay.PumpConfig{Format: format, DataAddr: br.DataAddr(), Rate: pps, Options: opts})
	if err != nil {
		return err
	}
	defer pump.Close()
	if err := br.ConnectPump(pump.CtrlAddr()); err != nil {
		return err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go pump.Run(runCtx)
	br.Start(runCtx)
	fmt.Fprintf(os.Stderr, "replay: %v bridge on %s, pump control on %s\n",
		format, br.DataAddr(), pump.CtrlAddr())

	engine := core.NewEngineWithSource(opts, br)
	defer engine.Data().Close()
	results, err := engine.RunAll(runCtx, parallel)
	if err != nil {
		return err
	}
	if err := emitSuite(results, engine.Data(), opts.Tracer, asCSV, asJSON); err != nil {
		return err
	}
	bs, ps := br.Stats(), pump.Stats()
	return emitEvents(opts.Tracer, []obs.Event{
		{Cat: "bridge", Msg: "wire bridge", Fields: []obs.Field{
			obs.Fi("buckets", bs.Keys),
			obs.Fi("rows verified", bs.Rows),
			obs.Fi("retries", bs.Retries),
			obs.Fi("rows lost", bs.LostRows),
			obs.Fi("orphan rows", bs.OrphanRows),
			obs.Fi("decode errors", bs.DecodeErrors),
			obs.Fi("unverified", bs.Unverified),
		}},
		{Cat: "bridge", Msg: "wire pump", Fields: []obs.Field{
			obs.Fi("requests", ps.Requests),
			obs.Fi("rows exported", ps.RowsSent),
			obs.Fi("nacks", ps.Nacks),
		}},
	})
}

// runCluster executes the full experiment suite over a sharded pump
// fleet: the vantage points are partitioned over N pumps (in-process
// goroutines, or supervised `lockdown pump` subprocesses), each pump
// exports with its own wire stream identity, and one bridge demuxes,
// verifies and serves the interleaved export to the engine. The emitted
// results are byte-identical to `lockdown all` at the same options;
// per-shard wire accounting goes to stderr.
func runCluster(ctx context.Context, opts core.Options, formatName, addr string, pps float64, shards int, subprocess bool, maxRestarts int, chaosSpec string, tuning retryTuning, parallel int, asCSV, asJSON bool) error {
	format, err := collector.ParseFormat(formatName)
	if err != nil {
		return err
	}
	var chaos *faultinject.Spec
	if chaosSpec != "" {
		parsed, err := faultinject.ParseSpec(chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		chaos = &parsed
		// A fault schedule stretches fetches across restart and
		// re-partition windows; without an explicit budget, give the
		// bridge one wide enough to ride out a full give-up sequence.
		if tuning.fetchBudget == 0 {
			tuning.fetchBudget = 60 * time.Second
		}
	}
	c, err := cluster.New(cluster.Spec{
		Shards:         shards,
		Format:         format,
		Options:        opts,
		Rate:           pps,
		Subprocess:     subprocess,
		MaxRestarts:    maxRestarts,
		BridgeListen:   addr,
		AttemptTimeout: tuning.attemptTimeout,
		MaxAttempts:    tuning.maxAttempts,
		FetchBudget:    tuning.fetchBudget,
		AllowPartial:   tuning.allowPartial,
		Chaos:          chaos,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := c.Start(runCtx); err != nil {
		return err
	}
	mode := "in-process"
	if subprocess {
		mode = "subprocess"
	}
	fmt.Fprintf(os.Stderr, "cluster: %v bridge on %s, %d %s pump shards\n",
		format, c.Bridge().DataAddr(), shards, mode)
	if chaos != nil {
		fmt.Fprintf(os.Stderr, "cluster: chaos active: %s\n", chaos)
	}

	engine := core.NewEngineWithSource(opts, c.Source())
	defer engine.Data().Close()
	results, err := engine.RunAll(runCtx, parallel)
	if err != nil {
		return err
	}
	if err := emitSuite(results, engine.Data(), opts.Tracer, asCSV, asJSON); err != nil {
		return err
	}
	return emitEvents(opts.Tracer, clusterEvents(c.Stats()))
}

// clusterEvents converts a cluster stats snapshot into the per-run
// summary events: aggregate bridge accounting, one indented detail per
// shard, every rebalance, and the chaos relay totals when fault
// injection was active.
func clusterEvents(stats cluster.Stats) []obs.Event {
	bs := stats.Bridge
	events := []obs.Event{{Cat: "bridge", Msg: "wire bridge", Fields: []obs.Field{
		obs.Fi("buckets", bs.Keys),
		obs.Fi("rows verified", bs.Rows),
		obs.Fi("retries", bs.Retries),
		obs.Fi("rows lost", bs.LostRows),
		obs.Fi("orphan rows", bs.OrphanRows),
		obs.Fi("decode errors", bs.DecodeErrors),
	}}}
	for _, sh := range stats.Shards {
		ss := stats.Streams[sh.Stream]
		health := "healthy"
		sev := obs.Info
		switch {
		case sh.Dead:
			health, sev = "DEAD", obs.Warn
		case !sh.Healthy:
			health, sev = "DOWN", obs.Warn
		}
		events = append(events, obs.Event{Cat: "cluster", Sub: true, Severity: sev,
			Msg: fmt.Sprintf("shard %d (%s, %d restarts)", sh.Shard, health, sh.Restarts),
			Fields: []obs.Field{
				obs.Fi("buckets", ss.Keys),
				obs.Fi("rows", ss.Rows),
				obs.Fi("retries", ss.Retries),
				obs.Fi("rows lost", ss.LostRows),
			}})
	}
	for _, ev := range stats.Rebalances {
		events = append(events, obs.Event{Cat: "cluster", Sub: true, Severity: obs.Warn,
			Msg: "rebalance", Fields: []obs.Field{
				obs.F("", fmt.Sprintf("shard %d (%s)", ev.From, ev.Reason)),
				obs.Fi("vantage points moved", int64(len(ev.Moved))),
			}})
	}
	if cs := stats.Chaos; cs != nil {
		events = append(events, obs.Event{Cat: "chaos", Sub: true, Severity: obs.Warn,
			Msg: "chaos relay", Fields: []obs.Field{
				obs.Fi("datagrams", cs.Total.Seen),
				obs.Fi("dropped", cs.Total.Dropped),
				obs.Fi("duplicated", cs.Total.Duplicated),
				obs.Fi("reordered", cs.Total.Reordered),
				obs.Fi("corrupted", cs.Total.Corrupted),
				obs.Fi("stalled", cs.Total.Stalled),
			}})
	}
	return events
}

// emitSuite writes a full-suite run the way `all` and `replay` share it:
// the results to stdout (text, CSV or JSON), then the timing summary and
// dataset-cache stats to stderr — keeping the two commands' output
// byte-identical by construction. The stderr accounting travels as
// structured obs Events through one renderer (and into the trace when
// one is active), so the terminal summary, the trace file and the
// /metrics exposition are three views of the same counters.
func emitSuite(results []*core.Result, data *core.Dataset, tracer *obs.Tracer, asCSV, asJSON bool) error {
	if asJSON {
		if err := report.WriteJSONAll(os.Stdout, results); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			if err := emit(res, asCSV, false); err != nil {
				return err
			}
		}
	}
	if err := report.WriteTimings(os.Stderr, results); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr)
	return emitEvents(tracer, suiteEvents(data))
}

// suiteEvents converts the dataset's cache accounting and degradation
// state into the run summary events every suite command shares.
func suiteEvents(data *core.Dataset) []obs.Event {
	stats := data.Stats()
	events := []obs.Event{{Cat: "cache", Msg: "dataset cache", Fields: []obs.Field{
		obs.Fi("entries", int64(stats.Entries)),
		obs.Fi("hits", stats.Hits),
		obs.Fi("misses", stats.Misses),
	}}}
	// Only runs with spill-tier activity carry the tier event; unbudgeted
	// runs always have resident batches and would emit noise otherwise.
	if stats.Spills > 0 || stats.Faults > 0 || stats.SpilledBytes > 0 {
		events = append(events, obs.Event{Cat: "cache", Msg: "flow-batch tiers", Fields: []obs.Field{
			obs.Fi("spills", stats.Spills),
			obs.Fi("faults", stats.Faults),
			obs.Fi("regens", stats.Regens),
			obs.Ff("MB resident", float64(stats.ResidentBytes)/(1<<20)),
			obs.Ff("MB spilled", float64(stats.SpilledBytes)/(1<<20)),
		}})
	}
	// A degraded (allow-partial) run is stamped explicitly so its output
	// is never mistaken for a complete one: every component-hour served
	// as an empty stand-in batch is named.
	if degraded := data.DegradedKeys(); len(degraded) > 0 {
		events = append(events, obs.Event{Cat: "degraded", Severity: obs.Degraded,
			Msg: "DEGRADED RUN", Fields: []obs.Field{
				obs.Fi("component-hours missing (served as empty batches):", int64(len(degraded))),
			}})
		for _, k := range degraded {
			events = append(events, obs.Event{Cat: "degraded", Severity: obs.Degraded, Sub: true, Msg: k})
		}
	}
	return events
}

// emitEvents renders run events to stderr and records each one as an
// instant in the trace, so the two sinks cannot disagree.
func emitEvents(tracer *obs.Tracer, events []obs.Event) error {
	for _, ev := range events {
		tracer.Emit(ev)
	}
	return report.WriteEvents(os.Stderr, events)
}

func emit(res *core.Result, asCSV, asJSON bool) error {
	switch {
	case asJSON:
		return report.WriteJSON(os.Stdout, res)
	case asCSV:
		return report.WriteCSV(os.Stdout, res)
	default:
		return report.WriteText(os.Stdout, res)
	}
}

// parseSize parses a byte size with an optional K/M/G suffix (plus an
// ignored B/iB tail), e.g. "64M", "2GiB", "4096". -cache-budget uses it.
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if u == "" {
		return 0, nil
	}
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, u[:len(u)-1]
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
