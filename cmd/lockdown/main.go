// Command lockdown regenerates the tables and figures of "The Lockdown
// Effect" (IMC 2020) from the synthetic vantage-point models.
//
// Usage:
//
//	lockdown list                 list all experiments
//	lockdown run <id> [flags]     run one experiment (e.g. fig1, tab1, fig11a)
//	lockdown all [flags]          run every experiment
//
// Flags for run/all:
//
//	-csv          emit CSV instead of aligned text tables
//	-scale f      flow sampling density for flow-level experiments (default 0.5)
//	-seed n       generator seed override
package main

import (
	"flag"
	"fmt"
	"os"

	"lockdown/internal/core"
	"lockdown/internal/report"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lockdown list
  lockdown run <experiment-id> [-csv] [-scale f] [-seed n]
  lockdown all [-csv] [-scale f] [-seed n]

experiments:
`)
	for _, e := range core.All() {
		fmt.Fprintf(os.Stderr, "  %-18s %-22s %s\n", e.ID, e.Artifact, e.Title)
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range core.All() {
			fmt.Printf("%-18s %-22s %s\n", e.ID, e.Artifact, e.Title)
		}
		return nil
	case "run", "all":
		fs := flag.NewFlagSet(args[0], flag.ContinueOnError)
		csvOut := fs.Bool("csv", false, "emit CSV instead of text tables")
		scale := fs.Float64("scale", 0.5, "flow sampling density for flow-level experiments")
		seed := fs.Int64("seed", 0, "generator seed override (0 = default)")
		var rest []string
		if args[0] == "run" {
			if len(args) < 2 {
				usage()
				return fmt.Errorf("run needs an experiment id")
			}
			rest = args[2:]
			if err := fs.Parse(rest); err != nil {
				return err
			}
			opts := core.Options{FlowScale: *scale, Seed: *seed}
			res, err := core.Run(args[1], opts)
			if err != nil {
				return err
			}
			return emit(res, *csvOut)
		}
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		opts := core.Options{FlowScale: *scale, Seed: *seed}
		results, err := core.RunAll(opts)
		if err != nil {
			return err
		}
		for _, res := range results {
			if err := emit(res, *csvOut); err != nil {
				return err
			}
		}
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func emit(res *core.Result, asCSV bool) error {
	if asCSV {
		return report.WriteCSV(os.Stdout, res)
	}
	return report.WriteText(os.Stdout, res)
}
