// Command lockdown regenerates the tables and figures of "The Lockdown
// Effect" (IMC 2020) from the synthetic vantage-point models.
//
// Usage:
//
//	lockdown list                 list all experiments
//	lockdown run <id> [flags]     run one experiment (e.g. fig1, tab1, fig11a)
//	lockdown all [flags]          run every experiment on the parallel engine
//	lockdown doc [flags]          emit the generated EXPERIMENTS.md to stdout
//	lockdown replay [flags]       run every experiment over live wire export
//	lockdown cluster [flags]      run every experiment over N sharded pumps
//	lockdown pump [flags]         serve one cluster shard (spawned by cluster)
//	lockdown scenario validate <file>  check a declarative scenario file
//	lockdown scenario run <file> [flags]  run the suite on a scenario model
//	lockdown scenario doc         emit the scenario schema reference
//
// A scenario is a YAML file (see docs/SCENARIOS.md and the gallery under
// examples/scenarios/) declaring vantage points, membership and class
// mixes, and an event timeline — lockdown waves, holidays, flash events,
// link outages, a return to office — that compiles down to the built-in
// synthetic traffic model. The shipped default scenario restates the
// paper's timeline and `scenario run` on it is byte-identical to `all`;
// a scenario's declared seed/flow_scale are defaults that explicit
// -seed/-scale flags override.
//
// Flags for run/all/doc/replay/cluster:
//
//	-csv          emit CSV instead of aligned text tables (run/all/replay/cluster)
//	-json         emit JSON instead of text tables (run/all/replay/cluster)
//	-scale f      flow sampling density for flow-level experiments (default 0.5)
//	-seed n       generator seed override
//	-parallel n   global worker budget for all/doc/replay/cluster (default
//	              GOMAXPROCS). One budget governs both scheduling levels:
//	              experiments run concurrently on it, and the sharded scans
//	              inside each experiment borrow whatever is spare, so total
//	              concurrency never exceeds n (see internal/core.ShardedScan)
//	-scan-chunk n grid items per intra-experiment scan chunk (0 = per-scan
//	              default: 24 for hour grids, 1 for vantage-point/day grids).
//	              Output is byte-identical at any chunk size
//	-cpuprofile f write a pprof CPU profile of the command to f
//	-memprofile f write a pprof heap profile (after the run) to f
//	-cache-budget n  resident flow-batch cache cap (bytes, K/M/G suffixes;
//	              0 = unlimited). Colder hours spill to mmap-backed columnar
//	              segments and fault back in; output is byte-identical at
//	              any budget (see internal/flowstore)
//	-cache-dir d  directory for spilled segments (default: OS temp dir)
//	-format f     replay/cluster wire format: v5, v9 or ipfix (default ipfix)
//	-addr a       replay/cluster bridge UDP listen address (default 127.0.0.1:0)
//	-pps f        replay/cluster pump pacing, datagrams per second (0 = unlimited)
//	-unverified   replay only: capture mode, serve wire rows without failing on
//	              verification mismatches (accounted in the bridge stats)
//	-attempt-timeout d  replay/cluster: per-attempt bucket collection timeout
//	              (default 2s)
//	-max-attempts n  replay/cluster: attempts per bucket (default 5)
//	-fetch-budget d  replay/cluster: wall-clock retry budget per bucket; when
//	              set it replaces the flat attempt-timeout × max-attempts cap
//	              and alone decides when the bridge gives up
//	-allow-partial  replay/cluster: serve explicitly-accounted empty batches
//	              for buckets whose retry budget ran out instead of failing
//	              the run; the degraded component-hours are stamped on stderr
//	-shards n     cluster only: number of pump shards (default 4)
//	-subprocess   cluster only: run each pump as its own `lockdown pump` process
//	-max-restarts n  cluster only: restarts per shard before it is declared
//	              dead and its vantage points re-partition away (default 3)
//	-chaos spec   cluster only: deterministic fault injection, e.g.
//	              'drop=0.05,kill=shard1@t+2s,seed=7' (drop/dup/reorder/
//	              corrupt probabilities, delay, kill/stall schedules; see
//	              internal/faultinject). Same seed, same faults; output
//	              stays byte-identical to `all` while faults are recoverable
//
// `replay` runs the same suite as `all`, but every flow batch travels a
// real UDP wire first: a pump exports the synthetic component-hours as
// NetFlow v5/v9 or IPFIX packets and the bridge decodes, demuxes and
// verifies them bit-for-bit before the engine consumes them (see
// internal/replay). The results are byte-identical to `all`; the wire
// and loss accounting is printed to stderr.
//
// `cluster` is `replay` distributed the way the paper's measurement
// actually was: the vantage points are partitioned over N pumps — each
// with its own wire stream identity (IPFIX observation domain, NetFlow
// v9 source ID, v5 engine ID) — and the bridge demuxes their
// interleaved export per stream, with N buckets in flight concurrently
// (see internal/cluster). Pumps run as in-process goroutines or (with
// -subprocess) separate `lockdown pump` processes; either way a crashed
// pump restarts under jittered backoff, and a pump that exhausts
// -max-restarts is declared dead and its vantage points re-partition
// over the survivors. -chaos injects a seeded, reproducible fault
// schedule (datagram faults on the wire, scheduled pump kills) to
// exercise exactly those paths. The results remain byte-identical to
// `all`; per-shard wire accounting, health history and rebalance events
// are printed to stderr.
//
// `all` prints a bench-style timing summary and the dataset-cache stats to
// stderr after the results. The profile flags exist so performance work on
// the flow path can be driven by pprof evidence instead of guesswork:
//
//	lockdown all -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"lockdown/internal/cluster"
	"lockdown/internal/collector"
	"lockdown/internal/core"
	"lockdown/internal/faultinject"
	"lockdown/internal/replay"
	"lockdown/internal/report"
	"lockdown/internal/scenario"
	"lockdown/internal/synth"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  lockdown list
  lockdown run <experiment-id> [-csv|-json] [-scale f] [-seed n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f]
  lockdown all [-csv|-json] [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f]
  lockdown doc [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f]
  lockdown replay [-format v5|v9|ipfix] [-addr host:port] [-pps f] [-unverified] [-attempt-timeout d] [-max-attempts n] [-fetch-budget d] [-allow-partial] [-csv|-json] [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f]
  lockdown cluster [-shards n] [-subprocess] [-max-restarts n] [-chaos spec] [-format v5|v9|ipfix] [-addr host:port] [-pps f] [-attempt-timeout d] [-max-attempts n] [-fetch-budget d] [-allow-partial] [-csv|-json] [-scale f] [-seed n] [-parallel n] [-cache-budget n] [-cache-dir d] [-scan-chunk n] [-cpuprofile f] [-memprofile f]
  lockdown pump -data host:port [-format v5|v9|ipfix] [-ctrl host:port] [-shard i/n] [-scale f] [-seed n] [-pps f]
  lockdown scenario validate <file.yaml>
  lockdown scenario run <file.yaml> [same flags as all]
  lockdown scenario doc

experiments:
`)
	for _, e := range core.All() {
		fmt.Fprintf(os.Stderr, "  %-18s %-22s %s\n", e.ID, e.Artifact, e.Title)
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first interrupt has cancelled ctx, stop capturing SIGINT
	// so a second Ctrl-C terminates the process immediately instead of
	// waiting for in-flight experiments to finish.
	context.AfterFunc(ctx, stop)
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range core.All() {
			fmt.Printf("%-18s %-22s %s\n", e.ID, e.Artifact, e.Title)
		}
		return nil
	case "pump":
		// The exporter half of a subprocess cluster; it has its own flag
		// shape and speaks the READY handshake on stdout, so it bypasses
		// the shared flag set below.
		return cluster.PumpMain(ctx, args[1:], os.Stdin, os.Stdout)
	case "scenario":
		if len(args) < 2 {
			usage()
			return fmt.Errorf("scenario needs a subcommand: validate, run or doc")
		}
		switch args[1] {
		case "doc":
			fmt.Print(scenario.SchemaDoc())
			return nil
		case "validate":
			if len(args) != 3 {
				return fmt.Errorf("usage: lockdown scenario validate <file.yaml>")
			}
			s, err := scenario.Load(args[2])
			if err != nil {
				return err
			}
			shape := "variant model"
			if s.Identity() {
				shape = "identity (compiles to the built-in model)"
			}
			fmt.Printf("scenario %q: %d vantage points, %d events, %s\n",
				s.Name, len(s.VPs), len(s.Events), shape)
			return nil
		case "run":
			if len(args) < 3 {
				return fmt.Errorf("usage: lockdown scenario run <file.yaml> [flags]")
			}
			// Re-enter the shared flag machinery as the synthetic
			// scenario-run command, with the file where run's id goes.
			return run(ctx, append([]string{"scenario-run", args[2]}, args[3:]...))
		default:
			return fmt.Errorf("unknown scenario subcommand %q (want validate, run or doc)", args[1])
		}
	case "run", "all", "doc", "replay", "cluster", "scenario-run":
		fs := flag.NewFlagSet(args[0], flag.ContinueOnError)
		csvOut := fs.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut := fs.Bool("json", false, "emit JSON instead of text tables")
		scale := fs.Float64("scale", 0.5, "flow sampling density for flow-level experiments")
		seed := fs.Int64("seed", 0, "generator seed override (0 = default)")
		parallel := fs.Int("parallel", 0, "worker count for all/doc/replay/cluster (0 = GOMAXPROCS)")
		cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
		cacheBudget := fs.String("cache-budget", "0", "resident flow-batch cache budget (bytes, K/M/G suffixes; 0 = unlimited, no spilling)")
		cacheDir := fs.String("cache-dir", "", "directory for spilled flow-batch segments (default: OS temp dir)")
		scanChunk := fs.Int("scan-chunk", 0, "grid items per intra-experiment scan chunk (0 = per-scan default; never changes results)")
		formatName := fs.String("format", "ipfix", "replay/cluster wire format: v5, v9 or ipfix")
		addr := fs.String("addr", "127.0.0.1:0", "replay/cluster bridge UDP listen address")
		pps := fs.Float64("pps", 0, "pump pacing in datagrams per second (0 = unlimited)")
		unverified := fs.Bool("unverified", false, "replay capture mode: serve wire rows without failing verification")
		attemptTimeout := fs.Duration("attempt-timeout", 0, "replay/cluster per-attempt bucket timeout (0 = default)")
		maxAttempts := fs.Int("max-attempts", 0, "replay/cluster attempts per bucket (0 = default)")
		fetchBudget := fs.Duration("fetch-budget", 0, "replay/cluster wall-clock retry budget per bucket (0 = attempt-timeout × max-attempts)")
		allowPartial := fs.Bool("allow-partial", false, "replay/cluster: degrade to accounted empty batches instead of failing when a bucket's retries run out")
		shards := fs.Int("shards", cluster.DefaultShards, "cluster pump shard count")
		subprocess := fs.Bool("subprocess", false, "cluster: run each pump as its own process")
		maxRestarts := fs.Int("max-restarts", 0, "cluster restarts per shard before give-up and re-partition (0 = default)")
		chaosSpec := fs.String("chaos", "", "cluster fault-injection spec, e.g. 'drop=0.05,kill=shard1@t+2s,seed=7'")

		rest := args[1:]
		var id string
		if args[0] == "run" || args[0] == "scenario-run" {
			if len(args) < 2 {
				usage()
				return fmt.Errorf("run needs an experiment id")
			}
			// For scenario-run, id carries the scenario file path.
			id = args[1]
			rest = args[2:]
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *csvOut && *jsonOut {
			return fmt.Errorf("-csv and -json are mutually exclusive")
		}
		// The flag set is shared across subcommands; reject flags that do
		// not apply to the one being run instead of silently ignoring them.
		switch args[0] {
		case "run":
			if *parallel != 0 {
				return fmt.Errorf("-parallel only applies to all/doc/replay/cluster")
			}
		case "doc":
			if *csvOut || *jsonOut {
				return fmt.Errorf("doc always emits markdown; -csv/-json only apply to run/all/replay/cluster")
			}
		}
		if args[0] != "replay" && args[0] != "cluster" {
			if *formatName != "ipfix" || *addr != "127.0.0.1:0" || *pps != 0 {
				return fmt.Errorf("-format/-addr/-pps only apply to replay/cluster")
			}
		}
		if args[0] != "replay" && *unverified {
			return fmt.Errorf("-unverified only applies to replay")
		}
		if args[0] != "replay" && args[0] != "cluster" {
			if *attemptTimeout != 0 || *maxAttempts != 0 || *fetchBudget != 0 || *allowPartial {
				return fmt.Errorf("-attempt-timeout/-max-attempts/-fetch-budget/-allow-partial only apply to replay/cluster")
			}
		}
		if args[0] != "cluster" && (*shards != cluster.DefaultShards || *subprocess || *maxRestarts != 0 || *chaosSpec != "") {
			return fmt.Errorf("-shards/-subprocess/-max-restarts/-chaos only apply to cluster")
		}
		if *attemptTimeout < 0 || *fetchBudget < 0 {
			return fmt.Errorf("-attempt-timeout and -fetch-budget must not be negative")
		}
		if *maxAttempts < 0 || *maxRestarts < 0 {
			return fmt.Errorf("-max-attempts and -max-restarts must not be negative")
		}
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			defer f.Close()
			if err := pprof.StartCPUProfile(f); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
			defer pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			defer func() {
				f, err := os.Create(*memProfile)
				if err != nil {
					fmt.Fprintln(os.Stderr, "lockdown: memprofile:", err)
					return
				}
				defer f.Close()
				runtime.GC() // materialise the live heap before snapshotting
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "lockdown: memprofile:", err)
				}
			}()
		}
		budget, err := parseSize(*cacheBudget)
		if err != nil {
			return fmt.Errorf("-cache-budget: %w", err)
		}
		opts := core.Options{FlowScale: *scale, Seed: *seed, CacheBudget: budget, CacheDir: *cacheDir, ScanChunk: *scanChunk}
		if args[0] == "scenario-run" {
			s, err := scenario.Load(id)
			if err != nil {
				return err
			}
			// The scenario's declared seed/flow_scale are defaults only;
			// a flag the user actually set on the command line wins.
			explicit := map[string]bool{}
			fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			if s.FlowScale != 0 && !explicit["scale"] {
				opts.FlowScale = s.FlowScale
			}
			if s.Seed != 0 && !explicit["seed"] {
				opts.Seed = s.Seed
			}
			declared := map[synth.VantagePoint]bool{}
			for _, vp := range s.VPs {
				declared[vp] = true
			}
			opts.Model = func(vp synth.VantagePoint) synth.Config {
				if declared[vp] {
					return s.Config(vp)
				}
				// Vantage points the scenario does not declare keep the
				// untouched built-in model.
				return synth.DefaultConfig(vp)
			}
			fmt.Fprintf(os.Stderr, "scenario: %q from %s\n", s.Name, s.File())
		}

		tuning := retryTuning{
			attemptTimeout: *attemptTimeout,
			maxAttempts:    *maxAttempts,
			fetchBudget:    *fetchBudget,
			allowPartial:   *allowPartial,
		}
		if args[0] == "replay" {
			return runReplay(ctx, opts, *formatName, *addr, *pps, *unverified, tuning, *parallel, *csvOut, *jsonOut)
		}
		if args[0] == "cluster" {
			return runCluster(ctx, opts, *formatName, *addr, *pps, *shards, *subprocess, *maxRestarts, *chaosSpec, tuning, *parallel, *csvOut, *jsonOut)
		}
		engine := core.NewEngine(opts)
		defer engine.Data().Close()

		switch args[0] {
		case "run":
			res, err := engine.Run(ctx, id)
			if err != nil {
				return err
			}
			return emit(res, *csvOut, *jsonOut)
		case "all", "scenario-run":
			results, err := engine.RunAll(ctx, *parallel)
			if err != nil {
				return err
			}
			return emitSuite(results, engine.Data(), *csvOut, *jsonOut)
		default: // doc
			results, err := engine.RunAll(ctx, *parallel)
			if err != nil {
				return err
			}
			return report.WriteExperimentsDoc(os.Stdout, results)
		}
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// retryTuning carries the shared bridge retry/degradation flags of the
// replay and cluster subcommands.
type retryTuning struct {
	attemptTimeout time.Duration
	maxAttempts    int
	fetchBudget    time.Duration
	allowPartial   bool
}

// runReplay executes the full experiment suite over a live loopback wire
// pair: a replay.Pump exports every requested component-hour as real
// NetFlow/IPFIX packets, and a replay.Bridge feeds the decoded,
// bit-for-bit verified batches into the engine as its FlowSource. The
// emitted results are byte-identical to `lockdown all` at the same
// options; the wire and loss accounting goes to stderr.
func runReplay(ctx context.Context, opts core.Options, formatName, addr string, pps float64, unverified bool, tuning retryTuning, parallel int, asCSV, asJSON bool) error {
	format, err := collector.ParseFormat(formatName)
	if err != nil {
		return err
	}
	br, err := replay.NewBridge(replay.Config{
		Format:         format,
		ListenAddr:     addr,
		Options:        opts,
		Unverified:     unverified,
		AttemptTimeout: tuning.attemptTimeout,
		MaxAttempts:    tuning.maxAttempts,
		FetchBudget:    tuning.fetchBudget,
		AllowPartial:   tuning.allowPartial,
	})
	if err != nil {
		return err
	}
	defer br.Close()
	pump, err := replay.NewPump(replay.PumpConfig{Format: format, DataAddr: br.DataAddr(), Rate: pps, Options: opts})
	if err != nil {
		return err
	}
	defer pump.Close()
	if err := br.ConnectPump(pump.CtrlAddr()); err != nil {
		return err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go pump.Run(runCtx)
	br.Start(runCtx)
	fmt.Fprintf(os.Stderr, "replay: %v bridge on %s, pump control on %s\n",
		format, br.DataAddr(), pump.CtrlAddr())

	engine := core.NewEngineWithSource(opts, br)
	defer engine.Data().Close()
	results, err := engine.RunAll(runCtx, parallel)
	if err != nil {
		return err
	}
	if err := emitSuite(results, engine.Data(), asCSV, asJSON); err != nil {
		return err
	}
	bs, ps := br.Stats(), pump.Stats()
	fmt.Fprintf(os.Stderr, "wire bridge: %d buckets, %d rows verified, %d retries, %d rows lost, %d orphan rows, %d decode errors, %d unverified\n",
		bs.Keys, bs.Rows, bs.Retries, bs.LostRows, bs.OrphanRows, bs.DecodeErrors, bs.Unverified)
	fmt.Fprintf(os.Stderr, "wire pump: %d requests, %d rows exported, %d nacks\n",
		ps.Requests, ps.RowsSent, ps.Nacks)
	return nil
}

// runCluster executes the full experiment suite over a sharded pump
// fleet: the vantage points are partitioned over N pumps (in-process
// goroutines, or supervised `lockdown pump` subprocesses), each pump
// exports with its own wire stream identity, and one bridge demuxes,
// verifies and serves the interleaved export to the engine. The emitted
// results are byte-identical to `lockdown all` at the same options;
// per-shard wire accounting goes to stderr.
func runCluster(ctx context.Context, opts core.Options, formatName, addr string, pps float64, shards int, subprocess bool, maxRestarts int, chaosSpec string, tuning retryTuning, parallel int, asCSV, asJSON bool) error {
	format, err := collector.ParseFormat(formatName)
	if err != nil {
		return err
	}
	var chaos *faultinject.Spec
	if chaosSpec != "" {
		parsed, err := faultinject.ParseSpec(chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		chaos = &parsed
		// A fault schedule stretches fetches across restart and
		// re-partition windows; without an explicit budget, give the
		// bridge one wide enough to ride out a full give-up sequence.
		if tuning.fetchBudget == 0 {
			tuning.fetchBudget = 60 * time.Second
		}
	}
	c, err := cluster.New(cluster.Spec{
		Shards:         shards,
		Format:         format,
		Options:        opts,
		Rate:           pps,
		Subprocess:     subprocess,
		MaxRestarts:    maxRestarts,
		BridgeListen:   addr,
		AttemptTimeout: tuning.attemptTimeout,
		MaxAttempts:    tuning.maxAttempts,
		FetchBudget:    tuning.fetchBudget,
		AllowPartial:   tuning.allowPartial,
		Chaos:          chaos,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := c.Start(runCtx); err != nil {
		return err
	}
	mode := "in-process"
	if subprocess {
		mode = "subprocess"
	}
	fmt.Fprintf(os.Stderr, "cluster: %v bridge on %s, %d %s pump shards\n",
		format, c.Bridge().DataAddr(), shards, mode)
	if chaos != nil {
		fmt.Fprintf(os.Stderr, "cluster: chaos active: %s\n", chaos)
	}

	engine := core.NewEngineWithSource(opts, c.Source())
	defer engine.Data().Close()
	results, err := engine.RunAll(runCtx, parallel)
	if err != nil {
		return err
	}
	if err := emitSuite(results, engine.Data(), asCSV, asJSON); err != nil {
		return err
	}
	stats := c.Stats()
	bs := stats.Bridge
	fmt.Fprintf(os.Stderr, "wire bridge: %d buckets, %d rows verified, %d retries, %d rows lost, %d orphan rows, %d decode errors\n",
		bs.Keys, bs.Rows, bs.Retries, bs.LostRows, bs.OrphanRows, bs.DecodeErrors)
	for _, sh := range stats.Shards {
		ss := stats.Streams[sh.Stream]
		health := "healthy"
		switch {
		case sh.Dead:
			health = "DEAD"
		case !sh.Healthy:
			health = "DOWN"
		}
		fmt.Fprintf(os.Stderr, "  shard %d (%s, %d restarts): %d buckets, %d rows, %d retries, %d rows lost\n",
			sh.Shard, health, sh.Restarts, ss.Keys, ss.Rows, ss.Retries, ss.LostRows)
	}
	for _, ev := range stats.Rebalances {
		fmt.Fprintf(os.Stderr, "  rebalance: shard %d (%s), %d vantage points moved\n",
			ev.From, ev.Reason, len(ev.Moved))
	}
	if cs := stats.Chaos; cs != nil {
		fmt.Fprintf(os.Stderr, "  chaos relay: %d datagrams, %d dropped, %d duplicated, %d reordered, %d corrupted, %d stalled\n",
			cs.Total.Seen, cs.Total.Dropped, cs.Total.Duplicated, cs.Total.Reordered, cs.Total.Corrupted, cs.Total.Stalled)
	}
	return nil
}

// emitSuite writes a full-suite run the way `all` and `replay` share it:
// the results to stdout (text, CSV or JSON), then the timing summary and
// dataset-cache stats to stderr — keeping the two commands' output
// byte-identical by construction.
func emitSuite(results []*core.Result, data *core.Dataset, asCSV, asJSON bool) error {
	if asJSON {
		if err := report.WriteJSONAll(os.Stdout, results); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			if err := emit(res, asCSV, false); err != nil {
				return err
			}
		}
	}
	if err := report.WriteTimings(os.Stderr, results); err != nil {
		return err
	}
	stats := data.Stats()
	fmt.Fprintf(os.Stderr, "\ndataset cache: %d entries, %d hits, %d misses\n",
		stats.Entries, stats.Hits, stats.Misses)
	// Only runs with spill-tier activity print the tier line; unbudgeted
	// runs always have resident batches and would emit noise otherwise.
	if stats.Spills > 0 || stats.Faults > 0 || stats.SpilledBytes > 0 {
		fmt.Fprintf(os.Stderr, "flow-batch tiers: %d spills, %d faults, %d regens, %.1f MB resident, %.1f MB spilled\n",
			stats.Spills, stats.Faults, stats.Regens,
			float64(stats.ResidentBytes)/(1<<20), float64(stats.SpilledBytes)/(1<<20))
	}
	// A degraded (allow-partial) run is stamped explicitly so its output
	// is never mistaken for a complete one: every component-hour served
	// as an empty stand-in batch is named.
	if degraded := data.DegradedKeys(); len(degraded) > 0 {
		fmt.Fprintf(os.Stderr, "\nDEGRADED RUN: %d component-hours missing (served as empty batches):\n", len(degraded))
		for _, k := range degraded {
			fmt.Fprintf(os.Stderr, "  %s\n", k)
		}
	}
	return nil
}

func emit(res *core.Result, asCSV, asJSON bool) error {
	switch {
	case asJSON:
		return report.WriteJSON(os.Stdout, res)
	case asCSV:
		return report.WriteCSV(os.Stdout, res)
	default:
		return report.WriteText(os.Stdout, res)
	}
}

// parseSize parses a byte size with an optional K/M/G suffix (plus an
// ignored B/iB tail), e.g. "64M", "2GiB", "4096". -cache-budget uses it.
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if u == "" {
		return 0, nil
	}
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, u[:len(u)-1]
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
