// Command goldendiff compares two rendered suite outputs (the text
// `lockdown all` prints) modulo the _runtime/ execution metrics, using
// the same exclusion contract as the golden tests in internal/goldentest.
// It exits 0 when the outputs are identical apart from runtime lines and
// 1 with a description of the first divergence otherwise, so CI steps
// that pin `lockdown all` bit-identical across cache budgets, worker
// counts or wire paths share one diff implementation instead of shell
// pipelines.
//
// Usage: goldendiff <want-file> <got-file>
package main

import (
	"fmt"
	"os"

	"lockdown/internal/goldentest"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: %s <want-file> <got-file>\n", os.Args[0])
		os.Exit(2)
	}
	want, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldendiff:", err)
		os.Exit(2)
	}
	got, err := os.ReadFile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldendiff:", err)
		os.Exit(2)
	}
	if d := goldentest.DiffModuloRuntime(string(want), string(got)); d != "" {
		fmt.Fprintf(os.Stderr, "goldendiff: %s vs %s: %s\n", os.Args[1], os.Args[2], d)
		os.Exit(1)
	}
}
