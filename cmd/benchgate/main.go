// Command benchgate guards the allocation budget of the batch codec hot
// paths. It reads `go test -bench -benchmem` output on stdin, compares
// the allocs/op of every gated benchmark against the baseline recorded in
// a BENCH_*.json file, and exits non-zero if any gate regresses by more
// than 10% (plus one allocation of slack for integer rounding). CI runs
// it after the codec benchmarks so a change that reintroduces per-record
// allocations on the NetFlow/IPFIX batch paths fails the build instead of
// silently landing.
//
// Usage:
//
//	go test -bench Codec -benchmem -run '^$' . | go run ./cmd/benchgate -baseline BENCH_pr2.json [-out observed.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Baseline is the subset of a BENCH_*.json file benchgate consumes.
type Baseline struct {
	// Gates maps benchmark names (without the -N GOMAXPROCS suffix) to
	// the budgets they must hold.
	Gates map[string]Gate `json:"gates"`
}

// Gate is one benchmark's recorded budget.
type Gate struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Observed is one parsed benchmark result line.
type Observed struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// parseBenchLine parses one `go test -bench` result line, returning the
// benchmark name (GOMAXPROCS suffix stripped) and its metrics.
func parseBenchLine(line string) (string, Observed, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Observed{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var o Observed
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			o.NsPerOp = v
			seen = true
		case "B/op":
			o.BytesPerOp = v
		case "allocs/op":
			o.AllocsPerOp = v
		}
	}
	return name, o, seen
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_pr2.json", "JSON file with the allocation gates")
	outPath := flag.String("out", "", "optional file to write the observed results to (JSON)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", *baselinePath, err)
	}
	if len(base.Gates) == 0 {
		return fmt.Errorf("baseline %s defines no gates", *baselinePath)
	}

	observed := make(map[string]Observed)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the benchmark output through
		if name, o, ok := parseBenchLine(line); ok {
			observed[name] = o
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stdin: %w", err)
	}

	if *outPath != "" {
		blob, err := json.MarshalIndent(map[string]any{"benchmarks": observed}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("out: %w", err)
		}
	}

	failed := 0
	for name, gate := range base.Gates {
		o, ok := observed[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: gated benchmark missing from input\n", name)
			failed++
			continue
		}
		// >10% regression fails; one allocation of absolute slack keeps
		// integer-rounded zero baselines meaningful without flaking.
		allowed := gate.AllocsPerOp*1.10 + 1
		if o.AllocsPerOp > allowed {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.1f allocs/op exceeds budget %.1f (baseline %.1f)\n",
				name, o.AllocsPerOp, allowed, gate.AllocsPerOp)
			failed++
		} else {
			fmt.Fprintf(os.Stderr, "benchgate: ok %s: %.1f allocs/op (budget %.1f)\n", name, o.AllocsPerOp, allowed)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d gate(s) failed", failed)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
