// Package lockdown_bench is the benchmark harness that regenerates every
// table and figure of "The Lockdown Effect" (IMC 2020). Each benchmark runs
// the corresponding experiment of internal/core and reports the headline
// metric(s) as custom benchmark units, so that
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers (see
// EXPERIMENTS.md for the paper-vs-measured comparison).
package lockdown_bench

import (
	"context"
	"testing"
	"time"

	"lockdown/internal/appclass"
	"lockdown/internal/core"
	"lockdown/internal/flowrec"
	"lockdown/internal/ipfix"
	"lockdown/internal/netflow"
	"lockdown/internal/synth"
)

// benchOptions keeps the flow-level experiments affordable inside the
// benchmark loop while leaving relative results unchanged.
var benchOptions = core.Options{FlowScale: 0.25}

// runExperiment runs one experiment b.N times and reports selected metrics
// from the final run.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Run(id, benchOptions)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	for metric, unit := range metrics {
		b.ReportMetric(res.Metric(metric), unit)
	}
}

func BenchmarkFig01WeeklyVolume(b *testing.B) {
	runExperiment(b, "fig1", map[string]string{
		"ISP-CE/week13": "ISP-CE_wk13_x",
		"IXP-CE/week13": "IXP-CE_wk13_x",
	})
}

func BenchmarkFig02aDailyPattern(b *testing.B) {
	runExperiment(b, "fig2a", map[string]string{
		"mar25/morning-share": "mar25_morning_share",
	})
}

func BenchmarkFig02bcPatternClassification(b *testing.B) {
	runExperiment(b, "fig2bc", map[string]string{
		"ISP-CE/lockdown-workdays-weekendlike": "ISP_weekendlike_frac",
	})
}

func BenchmarkFig03aISPWeeks(b *testing.B) {
	runExperiment(b, "fig3a", map[string]string{
		"stage1/mean": "stage1_mean_x",
		"stage3/mean": "stage3_mean_x",
	})
}

func BenchmarkFig03bIXPWeeks(b *testing.B) {
	runExperiment(b, "fig3b", map[string]string{
		"IXP-CE/stage2/mean": "IXPCE_stage2_x",
		"IXP-US/stage1/mean": "IXPUS_stage1_x",
	})
}

func BenchmarkFig04Hypergiants(b *testing.B) {
	runExperiment(b, "fig4", map[string]string{
		"gap-week15/Workday 09:00-16:59": "other_minus_hg_wk15",
	})
}

func BenchmarkFig05LinkUtilization(b *testing.B) {
	runExperiment(b, "fig5", map[string]string{
		"median-shift": "median_util_shift",
	})
}

func BenchmarkFig06RemoteWorkASes(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"correlation": "total_vs_residential_r",
	})
}

func BenchmarkFig07aPortsISP(b *testing.B) {
	runExperiment(b, "fig7a", map[string]string{
		"UDP/443/stage1-workday":  "quic_stage1_x",
		"UDP/4500/stage1-workday": "natt_stage1_x",
	})
}

func BenchmarkFig07bPortsIXP(b *testing.B) {
	runExperiment(b, "fig7b", map[string]string{
		"UDP/3480/stage1-workday": "teams_stage1_x",
		"GRE/stage2-workday":      "gre_stage2_x",
	})
}

func BenchmarkTab01FilterInventory(b *testing.B) {
	runExperiment(b, "tab1", map[string]string{"classes": "classes"})
}

func BenchmarkFig08GamingIXPSE(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"week14/volume": "wk14_volume_x",
		"outage-ratio":  "outage_ratio",
	})
}

func BenchmarkFig09AppClassHeatmaps(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"IXP-CE/Web conf/stage1": "IXPCE_webconf_pct",
		"ISP-CE/VoD/stage1":      "ISP_vod_pct",
	})
}

func BenchmarkFig10VPNShift(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"stage1/domain": "domain_vpn_stage1_x",
		"stage1/port":   "port_vpn_stage1_x",
	})
}

func BenchmarkFig11aEDUVolume(b *testing.B) {
	runExperiment(b, "fig11a", map[string]string{
		"workday-drop": "workday_drop_frac",
	})
}

func BenchmarkFig11bEDUInOutRatio(b *testing.B) {
	runExperiment(b, "fig11b", map[string]string{
		"base-workday-ratio":   "base_inout_ratio",
		"online-workday-ratio": "online_inout_ratio",
	})
}

func BenchmarkFig12EDUConnections(b *testing.B) {
	runExperiment(b, "fig12", map[string]string{
		"Eyeball ISPs (VPN, In)": "vpn_in_x",
		"SSH (In)":               "ssh_in_x",
	})
}

// --- intra-experiment sharding benchmarks --------------------------------
//
// fig12's month-walk over sampled EDU days is the suite's worst-case
// single experiment, so it is the headline case for core.ShardedScan.
// Sequential holds the worker budget at one token (the sharded scan
// degrades to the old in-order loop); Sharded4 gives the engine four
// tokens, so the day-grid scan borrows the three spares and prefetches
// day h+1 while day h scans. Output is bit-identical either way
// (TestRunAllShardingInvariance pins this).
func benchFig12Workers(b *testing.B, parallel int) {
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(benchOptions)
		if _, err := eng.RunMany(context.Background(), []string{"fig12"}, parallel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Sequential(b *testing.B) { benchFig12Workers(b, 1) }

func BenchmarkFig12Sharded4(b *testing.B) { benchFig12Workers(b, 4) }

func BenchmarkTab02Hypergiants(b *testing.B) {
	runExperiment(b, "tab2", map[string]string{"hypergiants": "hypergiants"})
}

func BenchmarkAppBEDUClasses(b *testing.B) {
	runExperiment(b, "appB", map[string]string{"classes": "classes"})
}

func BenchmarkAblationPortOnlyVPN(b *testing.B) {
	runExperiment(b, "ablation-vpn", map[string]string{
		"missed-share": "missed_vpn_share",
	})
}

func BenchmarkAblationPatternBinSize(b *testing.B) {
	runExperiment(b, "ablation-binsize", map[string]string{
		"bin6": "bin6_agreement",
	})
}

// --- full-suite engine benchmarks ---------------------------------------
//
// The three RunAll benchmarks quantify the engine's two levers on the full
// 21-experiment suite: the shared dataset cache (SeedSequential vs
// Sequential) and the bounded worker pool (Sequential vs Parallel8).
// Results are bit-identical across all three (see
// TestRunAllParallelDeterminism), so only the wall time moves.

// BenchmarkRunAllSeedSequential reproduces the pre-engine execution model:
// every experiment runs on its own single-use engine, so nothing is shared
// and each experiment regenerates its inputs from scratch.
func BenchmarkRunAllSeedSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range core.All() {
			if _, err := core.Run(e.ID, benchOptions); err != nil {
				b.Fatalf("experiment %s: %v", e.ID, err)
			}
		}
	}
}

// BenchmarkRunAllSequential runs the suite on one engine with a single
// worker: the speedup over SeedSequential is the dataset cache alone.
func BenchmarkRunAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEngine(benchOptions).RunAll(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel8 runs the suite on one engine with eight
// workers: cache sharing plus parallel execution.
func BenchmarkRunAllParallel8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEngine(benchOptions).RunAll(context.Background(), 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

func benchRecords(n int) []flowrec.Record {
	g := synth.MustNewDefault(synth.ISPCE)
	recs := g.FlowsForHour(time.Date(2020, 3, 25, 20, 0, 0, 0, time.UTC))
	for len(recs) < n {
		recs = append(recs, recs...)
	}
	return recs[:n]
}

func BenchmarkCodecNetflowV5(b *testing.B) {
	recs := benchRecords(netflow.V5MaxRecords)
	export := time.Date(2020, 3, 25, 21, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := netflow.EncodeV5(recs, export, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netflow.DecodeV5(pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(netflow.V5MaxRecords), "records/op")
}

func BenchmarkCodecNetflowV9(b *testing.B) {
	recs := benchRecords(100)
	export := time.Date(2020, 3, 25, 21, 0, 0, 0, time.UTC)
	enc := &netflow.V9Encoder{SourceID: 1}
	dec := netflow.NewV9Decoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := enc.Encode(recs, export)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "records/op")
}

func BenchmarkCodecIPFIX(b *testing.B) {
	recs := benchRecords(100)
	export := time.Date(2020, 3, 25, 21, 0, 0, 0, time.UTC)
	enc := &ipfix.Encoder{DomainID: 1}
	dec := ipfix.NewDecoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := enc.Encode(recs, export)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "records/op")
}

// --- batch-path micro-benchmarks ----------------------------------------
//
// The *Batch codec benchmarks exercise the steady-state export/collect
// loop: one reused packet buffer and one reused decode batch. Run with
// -benchmem; the CI bench gate fails the build if allocs/op regresses by
// more than 10% against the BENCH_pr2.json baseline (~0 allocs/op).

func BenchmarkCodecNetflowV5Batch(b *testing.B) {
	src := flowrec.FromRecords(benchRecords(netflow.V5MaxRecords))
	export := time.Date(2020, 3, 25, 21, 0, 0, 0, time.UTC)
	var buf []byte
	dec := flowrec.NewBatch(netflow.V5MaxRecords)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = netflow.EncodeV5Batch(buf[:0], src, 0, src.Len(), export, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		dec.Reset()
		if _, err := netflow.DecodeV5Batch(dec, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(netflow.V5MaxRecords), "records/op")
}

func BenchmarkCodecNetflowV9Batch(b *testing.B) {
	src := flowrec.FromRecords(benchRecords(100))
	export := time.Date(2020, 3, 25, 21, 0, 0, 0, time.UTC)
	enc := &netflow.V9Encoder{SourceID: 1}
	decoder := netflow.NewV9Decoder()
	var buf []byte
	dec := flowrec.NewBatch(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.EncodeBatch(buf[:0], src, 0, src.Len(), export)
		if err != nil {
			b.Fatal(err)
		}
		dec.Reset()
		if _, err := decoder.DecodeBatch(dec, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "records/op")
}

func BenchmarkCodecIPFIXBatch(b *testing.B) {
	src := flowrec.FromRecords(benchRecords(100))
	export := time.Date(2020, 3, 25, 21, 0, 0, 0, time.UTC)
	enc := &ipfix.Encoder{DomainID: 1}
	decoder := ipfix.NewDecoder()
	var buf []byte
	dec := flowrec.NewBatch(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.EncodeBatch(buf[:0], src, 0, src.Len(), export)
		if err != nil {
			b.Fatal(err)
		}
		dec.Reset()
		if _, err := decoder.DecodeBatch(dec, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "records/op")
}

// BenchmarkGeneratorFlowsForHourBatch measures batch-native generation:
// the component-hour is sampled straight into preallocated columns.
func BenchmarkGeneratorFlowsForHourBatch(b *testing.B) {
	g := synth.MustNewDefault(synth.ISPCE)
	t := time.Date(2020, 3, 25, 20, 0, 0, 0, time.UTC)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = g.FlowsForHourBatch(t.Add(time.Duration(i%168) * time.Hour)).Len()
	}
	b.ReportMetric(float64(n), "flows/op")
}

// The Scan pair quantifies the aggregation speedup of the columnar
// layout: identical classification work over a record slice vs a batch.

func BenchmarkScanClassifyRecords(b *testing.B) {
	recs := benchRecords(4096)
	clf := appclass.NewDefault(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = clf.VolumeByClass(recs)
	}
	b.ReportMetric(4096, "records/op")
}

func BenchmarkScanClassifyBatch(b *testing.B) {
	batch := flowrec.FromRecords(benchRecords(4096))
	clf := appclass.NewDefault(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = clf.VolumeByClassBatch(batch)
	}
	b.ReportMetric(4096, "records/op")
}

func BenchmarkGeneratorHourlyVolume(b *testing.B) {
	g := synth.MustNewDefault(synth.IXPCE)
	t := time.Date(2020, 3, 25, 20, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HourlyVolume(t.Add(time.Duration(i%168) * time.Hour))
	}
}

func BenchmarkGeneratorFlowsForHour(b *testing.B) {
	g := synth.MustNewDefault(synth.ISPCE)
	t := time.Date(2020, 3, 25, 20, 0, 0, 0, time.UTC)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(g.FlowsForHour(t.Add(time.Duration(i%168) * time.Hour)))
	}
	b.ReportMetric(float64(n), "flows/op")
}
